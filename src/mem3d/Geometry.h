//===- mem3d/Geometry.h - 3D-memory organization ----------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural description of the 3D-stacked memory (paper Fig. 1b):
/// vertically stacked layers partitioned into banks; the banks that share
/// one set of TSVs across layers form a vault; each vault has a dedicated
/// memory controller. All dimensions are powers of two so address mapping
/// is pure bit slicing.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_GEOMETRY_H
#define FFT3D_MEM3D_GEOMETRY_H

#include <cstdint>

namespace fft3d {

/// Structural parameters of the 3D memory. The defaults describe the
/// 16-vault, 80 GB/s device calibrated in DESIGN.md §6.
struct Geometry {
  /// Number of vaults (V in the paper). Vaults are fully independent.
  unsigned NumVaults = 16;

  /// Number of stacked memory layers (L in the paper).
  unsigned LayersPerVault = 4;

  /// Banks per layer belonging to one vault (B in the paper).
  unsigned BanksPerLayer = 2;

  /// DRAM rows per bank.
  std::uint64_t RowsPerBank = 16384;

  /// Row-buffer (DRAM page) capacity in bytes (s, in bytes).
  std::uint64_t RowBufferBytes = 8192;

  /// TSVs in the bundle shared by one vault (N_tsv). Each TSV moves one
  /// bit per TSV clock, so a vault transfers NumTsvsPerVault/8 bytes per
  /// beat.
  unsigned NumTsvsPerVault = 64;

  /// Banks per vault (= LayersPerVault * BanksPerLayer).
  unsigned banksPerVault() const { return LayersPerVault * BanksPerLayer; }

  /// Total banks in the device.
  unsigned totalBanks() const { return NumVaults * banksPerVault(); }

  /// Bytes moved per vault per TSV beat.
  unsigned bytesPerBeat() const { return NumTsvsPerVault / 8; }

  /// Capacity of one bank in bytes.
  std::uint64_t bankBytes() const { return RowsPerBank * RowBufferBytes; }

  /// Capacity of one vault in bytes.
  std::uint64_t vaultBytes() const { return banksPerVault() * bankBytes(); }

  /// Total device capacity in bytes.
  std::uint64_t capacityBytes() const { return NumVaults * vaultBytes(); }

  /// Returns true if every field is a power of two and non-degenerate.
  bool isValid() const;

  /// Aborts with a diagnostic if the geometry is invalid.
  void validate() const;

  /// Layer index of a vault-local bank id (banks are numbered layer-major:
  /// bank = layer * BanksPerLayer + bankInLayer).
  unsigned layerOfBank(unsigned Bank) const { return Bank / BanksPerLayer; }
};

} // namespace fft3d

#endif // FFT3D_MEM3D_GEOMETRY_H
