//===- mem3d/Vault.h - Vault: banks + shared TSV channel --------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vault groups the banks that share one TSV bundle across all layers
/// (paper Fig. 1b). The vault tracks the shared resources: the TSV data
/// bus, the per-layer ACT spacing (t_diff_bank) and the cross-layer ACT
/// pipeline (t_in_vault). Different vaults share nothing.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_VAULT_H
#define FFT3D_MEM3D_VAULT_H

#include "mem3d/Bank.h"
#include "mem3d/Geometry.h"
#include "mem3d/Timing.h"

#include <vector>

namespace fft3d {

/// Shared-resource state of one vault.
class Vault {
public:
  Vault(const Geometry &G, const Timing &T);

  Bank &bank(unsigned Index);
  const Bank &bank(unsigned Index) const;
  unsigned numBanks() const { return static_cast<unsigned>(Banks.size()); }

  /// Earliest time the TSV data bus is free.
  Picos busFreeTime() const { return BusFree; }

  /// Earliest time an ACTIVATE may issue to \p Bank given the vault-level
  /// constraints (same-layer t_diff_bank, cross-layer t_in_vault). The
  /// bank's own t_diff_row constraint is checked separately by the caller.
  Picos earliestActivate(unsigned Bank) const;

  /// Records an ACTIVATE to \p Bank at \p When.
  void recordActivate(unsigned Bank, Picos When);

  /// Reserves the data bus for [Start, End).
  void reserveBus(Picos Start, Picos End);

private:
  const Geometry &Geo;
  const Timing &Time;
  std::vector<Bank> Banks;
  /// Earliest next ACT per layer (set to lastLayerAct + t_diff_bank).
  std::vector<Picos> LayerNextActivate;
  /// Earliest next ACT anywhere in the vault (lastAct + t_in_vault).
  Picos VaultNextActivate = 0;
  Picos BusFree = 0;
};

} // namespace fft3d

#endif // FFT3D_MEM3D_VAULT_H
