//===- mem3d/MemoryController.h - Per-vault controller ----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-vault memory controller (paper Fig. 1: "each vault has a
/// dedicated memory controller"). It queues requests, picks the next one
/// per its scheduling policy, resolves the paper's timing constraints
/// against the vault/bank state, and reports completions into the event
/// queue. One command can issue per TSV clock; all deeper parallelism
/// comes from bank pipelining.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_MEMORYCONTROLLER_H
#define FFT3D_MEM3D_MEMORYCONTROLLER_H

#include "fault/FaultInjector.h"
#include "mem3d/MemStats.h"
#include "mem3d/Request.h"
#include "mem3d/Timing.h"
#include "mem3d/Vault.h"
#include "obs/Tracer.h"
#include "sim/EventQueue.h"

#include <deque>

namespace fft3d {

class ShardedEventQueue;

/// Request selection policy.
enum class SchedulePolicy {
  /// Strictly first-come, first-served.
  Fcfs,
  /// First-ready FCFS: prefer the oldest row-buffer hit, else the oldest
  /// request.
  FrFcfs,
};

/// Row-buffer management policy.
enum class PagePolicy {
  /// Leave rows open after access (default; the dynamic layouts exploit
  /// open rows).
  OpenPage,
  /// Precharge after every access: every access pays an ACTIVATE.
  ClosedPage,
};

const char *schedulePolicyName(SchedulePolicy P);
const char *pagePolicyName(PagePolicy P);

/// One vault's controller.
class MemoryController {
public:
  /// \p Faults may be null (the fault-free fast path); \p VaultIndex is
  /// this controller's vault id, used for per-vault fault queries.
  /// Under the sharded engine \p Events is this vault's shard queue and
  /// \p Port is non-null: completions then cross back to the host through
  /// the port's outbox instead of the local queue, and latency samples go
  /// to the vault's private shard in \p DeviceStats.
  MemoryController(EventQueue &Events, Vault &V, const Geometry &G,
                   const Timing &T, SchedulePolicy Sched, PagePolicy Page,
                   VaultStats &Stats, MemStats &DeviceStats,
                   const FaultInjector *Faults = nullptr,
                   unsigned VaultIndex = 0,
                   ShardedEventQueue *Port = nullptr);

  /// Enqueues a request; \p Done fires (via the event queue) when the last
  /// data beat crosses the TSVs.
  void enqueue(const MemRequest &Req, const DecodedAddr &Where,
               MemCallback Done);

  /// Number of requests waiting to issue.
  std::size_t pending() const { return Queue.size(); }

  /// Distance-based lookahead oracle for the sharded engine: a lower
  /// bound on the earliest completion this controller could still post,
  /// given \p QueueNext = the timestamp of its shard's earliest pending
  /// event (the armed wake). Pure over controller/vault state; called by
  /// the engine's planner while every vault worker is parked. Returns
  /// "never" (Picos max) when no request is queued - completions for
  /// everything already issued are in the outbox, and new mail carries
  /// its own bound. The derivation:
  ///
  ///   wake      = max(QueueNext, next command-bus slot)
  ///   data path = max(wake + AccessLatency, TSV bus free) - every
  ///               burst pays CAS + TSV and serializes on the vault bus,
  ///               whose reservation only ever extends
  ///   burst     = + minBeats * TsvPeriod over the queued requests
  ///   activate  = + ActivateLatency when no queued request has its row
  ///               open (the first issue must activate; every later
  ///               completion serializes behind it on the bus)
  ///
  /// Under fault injection the offline-fail path completes a request at
  /// wake + AccessLatency with no bus traffic, so the bound collapses to
  /// the static floor there.
  Picos earliestCompletionBound(Picos QueueNext) const;

  /// Deepest the queue has ever been (front-end sizing input).
  std::size_t maxQueueDepth() const { return MaxDepth; }

  /// Attaches a timeline tracer (null detaches). Events use \p Pid as
  /// the process track and this controller's vault index as the tid.
  void setTracer(Tracer *T, std::uint32_t Pid = 0) {
    Trace = T;
    TracePid = Pid;
  }

private:
  struct PendingReq {
    MemRequest Req;
    DecodedAddr Where;
    MemCallback Done;
    Picos EnqueueTime;
  };

  /// Schedules the next decision point if one is needed.
  void armWakeup();

  /// Decision point: select and issue at most one request.
  void wake();

  /// Index into Queue of the request to issue next, per policy.
  std::size_t selectNext() const;

  /// Pushes \p T out of any periodic all-bank refresh window (no-op when
  /// refresh is disabled). Counts a refresh stall when it adjusts. Under
  /// fault injection the same point also stalls for thermal-throttle
  /// pause windows.
  Picos avoidRefresh(Picos T);

  /// Completes \p P with Failed=true (its vault went offline before it
  /// issued): a fast, retryable rejection.
  void failOffline(PendingReq &P);

  /// Resolves timing for \p P, updates bank/vault state and statistics,
  /// and schedules the completion callback. Returns the completion time.
  Picos issue(PendingReq &P);

  /// Routes a completion to the requester: through the sharded port's
  /// outbox when attached, else the local event queue.
  void scheduleCompletion(Picos When, MemCallback Done, const MemRequest &Req);

  /// Adds one latency sample; under the sharded engine this feeds the
  /// vault's private shard so parallel vaults never share an accumulator.
  void recordLatency(Picos Latency);

  EventQueue &Events;
  Vault &TheVault;
  const Geometry &Geo;
  const Timing &Time;
  SchedulePolicy Sched;
  PagePolicy Page;
  VaultStats &Stats;
  MemStats &DeviceStats;
  const FaultInjector *Faults;
  unsigned VaultIndex;
  ShardedEventQueue *Port;
  Tracer *Trace = nullptr;
  std::uint32_t TracePid = 0;

  std::deque<PendingReq> Queue;
  std::size_t MaxDepth = 0;
  bool WakeArmed = false;
  /// Command-bus pacing: at most one command decision per TSV period.
  Picos NextDecisionTime = 0;
};

} // namespace fft3d

#endif // FFT3D_MEM3D_MEMORYCONTROLLER_H
