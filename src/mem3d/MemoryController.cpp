//===- mem3d/MemoryController.cpp - Per-vault controller ------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/MemoryController.h"

#include "sim/ShardedEventQueue.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace fft3d;

const char *fft3d::schedulePolicyName(SchedulePolicy P) {
  switch (P) {
  case SchedulePolicy::Fcfs:
    return "FCFS";
  case SchedulePolicy::FrFcfs:
    return "FR-FCFS";
  }
  fft3d_unreachable("unknown SchedulePolicy");
}

const char *fft3d::pagePolicyName(PagePolicy P) {
  switch (P) {
  case PagePolicy::OpenPage:
    return "open-page";
  case PagePolicy::ClosedPage:
    return "closed-page";
  }
  fft3d_unreachable("unknown PagePolicy");
}

MemoryController::MemoryController(EventQueue &Events, Vault &V,
                                   const Geometry &G, const Timing &T,
                                   SchedulePolicy Sched, PagePolicy Page,
                                   VaultStats &Stats, MemStats &DeviceStats,
                                   const FaultInjector *Faults,
                                   unsigned VaultIndex, ShardedEventQueue *Port)
    : Events(Events), TheVault(V), Geo(G), Time(T), Sched(Sched), Page(Page),
      Stats(Stats), DeviceStats(DeviceStats), Faults(Faults),
      VaultIndex(VaultIndex), Port(Port) {}

void MemoryController::scheduleCompletion(Picos When, MemCallback Done,
                                          const MemRequest &Req) {
  auto Fire = [Done = std::move(Done), Req, When] { Done(Req, When); };
  if (Port)
    Port->postToHost(VaultIndex, When, std::move(Fire));
  else
    Events.scheduleAt(When, std::move(Fire));
}

void MemoryController::recordLatency(Picos Latency) {
  if (Port) {
    DeviceStats.latencyShard(VaultIndex).addSample(picosToNanos(Latency));
    if (Histogram *Hist = DeviceStats.latencyHistogramShard(VaultIndex))
      Hist->addSample(picosToNanos(Latency));
    return;
  }
  DeviceStats.recordLatency(Latency);
  if (Histogram *Hist = DeviceStats.latencyHistogramForUpdate())
    Hist->addSample(picosToNanos(Latency));
}

void MemoryController::enqueue(const MemRequest &Req, const DecodedAddr &Where,
                               MemCallback Done) {
  assert(Where.Column + Req.Bytes <= Geo.RowBufferBytes &&
         "request crosses a row-buffer boundary; split it upstream");
  assert(Req.Bytes != 0 && "zero-length request");
  Queue.push_back(PendingReq{Req, Where, std::move(Done), Events.now()});
  MaxDepth = std::max(MaxDepth, Queue.size());
  armWakeup();
}

void MemoryController::armWakeup() {
  if (WakeArmed || Queue.empty())
    return;
  WakeArmed = true;
  const Picos When = std::max(Events.now(), NextDecisionTime);
  Events.scheduleAt(When, [this] { wake(); });
}

void MemoryController::wake() {
  WakeArmed = false;
  if (Queue.empty())
    return;
  const std::size_t Index = selectNext();
  PendingReq P = std::move(Queue[Index]);
  // FCFS always picks the front, and FR-FCFS usually does; pop_front
  // avoids sliding the whole deque for the common case.
  if (Index == 0)
    Queue.pop_front();
  else
    Queue.erase(Queue.begin() + static_cast<std::ptrdiff_t>(Index));
  if (Faults && Faults->vaultOffline(VaultIndex, Events.now()))
    failOffline(P);
  else
    issue(P);
  // Command-bus pacing: the next decision happens no earlier than one TSV
  // period from now.
  NextDecisionTime = Events.now() + Time.TsvPeriod;
  armWakeup();
}

Picos MemoryController::earliestCompletionBound(Picos QueueNext) const {
  // No queued request: everything issued has already posted its
  // completion into the outbox, so nothing this controller does from its
  // current state can reach the host. New submissions are bounded per
  // mail by Memory3D::submit.
  if (Queue.empty())
    return std::numeric_limits<Picos>::max();
  const Picos Wake = std::max(QueueNext, NextDecisionTime);
  // Any fault path (vault offline) can fail a queued request at
  // wake + AccessLatency without touching the bus; fall back to the
  // static floor rather than second-guessing the injector's schedule.
  if (Faults)
    return Wake + Time.AccessLatency;
  std::uint64_t MinBeats = std::numeric_limits<std::uint64_t>::max();
  bool AnyHit = false;
  for (const PendingReq &P : Queue) {
    MinBeats = std::min(
        MinBeats, Time.wireBeats(ceilDiv(P.Req.Bytes, Geo.bytesPerBeat())));
    if (Page == PagePolicy::OpenPage &&
        TheVault.bank(P.Where.Bank).isRowHit(P.Where.Row))
      AnyHit = true;
  }
  // When no queued request has its row open, the first issue must
  // activate, and every other completion serializes behind it on the
  // vault's TSV bus - so the whole queue is at least a miss path away.
  const Picos CmdPath =
      AnyHit ? Time.hitPathBound(MinBeats) : Time.missPathBound(MinBeats);
  const Picos BusPath =
      TheVault.busFreeTime() + MinBeats * Time.TsvPeriod;
  return std::max(Wake + CmdPath, BusPath);
}

std::size_t MemoryController::selectNext() const {
  assert(!Queue.empty() && "selecting from an empty queue");
  if (Sched == SchedulePolicy::Fcfs || Page == PagePolicy::ClosedPage)
    return 0;
  // FR-FCFS: oldest row-buffer hit first, else the oldest request.
  for (std::size_t I = 0; I != Queue.size(); ++I) {
    const PendingReq &P = Queue[I];
    if (TheVault.bank(P.Where.Bank).isRowHit(P.Where.Row))
      return I;
  }
  return 0;
}

Picos MemoryController::avoidRefresh(Picos T) {
  if (Time.RefreshInterval != 0) {
    const Picos Phase = T % Time.RefreshInterval;
    if (Phase < Time.RefreshDuration) {
      ++Stats.RefreshStalls;
      const Picos Stalled = T - Phase + Time.RefreshDuration;
      if (Trace && Trace->wants(TraceCatMem))
        Trace->instant(TraceCatMem, "refresh_stall", TracePid, VaultIndex, T,
                       "stall_ps", Stalled - T);
      T = Stalled;
    }
  }
  if (Faults) {
    bool Stalled = false;
    const Picos Before = T;
    T = Faults->throttleAdjust(T, &Stalled);
    if (Stalled) {
      ++Stats.ThrottleStalls;
      if (Trace && Trace->wants(TraceCatFault))
        Trace->instant(TraceCatFault, "throttle_stall", TracePid, VaultIndex,
                       Before, "stall_ps", T - Before);
    }
  }
  return T;
}

void MemoryController::failOffline(PendingReq &P) {
  ++Stats.OfflineFailed;
  if (Trace && Trace->wants(TraceCatFault))
    Trace->instant(TraceCatFault, "offline_fail", TracePid, VaultIndex,
                   Events.now(), "req", P.Req.Id);
  if (P.Done) {
    P.Req.Failed = true;
    scheduleCompletion(Events.now() + Time.AccessLatency, std::move(P.Done),
                       P.Req);
  }
}

Picos MemoryController::issue(PendingReq &P) {
  Bank &B = TheVault.bank(P.Where.Bank);
  const Picos Now = Events.now();
  const std::uint64_t Beats =
      Time.wireBeats(ceilDiv(P.Req.Bytes, Geo.bytesPerBeat()));

  const bool Hit = Page == PagePolicy::OpenPage && B.isRowHit(P.Where.Row);
  Picos CmdTime;
  if (Hit) {
    ++Stats.RowHits;
    CmdTime = avoidRefresh(std::max(Now, B.nextColumnTime()));
  } else {
    ++Stats.RowMisses;
    ++Stats.RowActivations;
    const Picos ActTime = avoidRefresh(
        std::max({Now, B.nextActivateTime(),
                  TheVault.earliestActivate(P.Where.Bank)}));
    B.recordActivate(P.Where.Row, ActTime, Time.TDiffRow);
    TheVault.recordActivate(P.Where.Bank, ActTime);
    if (Trace && Trace->wants(TraceCatMem))
      Trace->instant(TraceCatMem, "activate", TracePid, VaultIndex, ActTime,
                     "bank", P.Where.Bank, "row", P.Where.Row);
    CmdTime = std::max(ActTime + Time.ActivateLatency, B.nextColumnTime());
  }

  const Picos DataStart =
      std::max(CmdTime + Time.AccessLatency, TheVault.busFreeTime());
  Picos BeatInterval = Time.TsvPeriod;
  Picos ColInterval = Time.TInRow;
  if (Faults) {
    // Degraded TSV lanes stretch the beat interval (fewer bits per
    // clock), which slows both the data bus and the in-row column pace.
    const double Scale = Faults->tsvScale(VaultIndex, Events.now());
    if (Scale > 1.0) {
      BeatInterval = static_cast<Picos>(
          static_cast<double>(BeatInterval) * Scale + 0.5);
      ColInterval = static_cast<Picos>(
          static_cast<double>(ColInterval) * Scale + 0.5);
    }
  }
  // The codec drain (0 when compression is off) lands after the last
  // wire beat; the bounds deliberately omit it, so actual completions
  // can only be later than the window planner assumed, never earlier.
  Picos DataEnd = DataStart + Beats * BeatInterval + Time.TsvCodecLatency;
  if (Faults && !P.Req.IsWrite &&
      Faults->readTakesEccRetry(VaultIndex, P.Req.Id)) {
    // A transient read error: the ECC retry re-transfers the burst after
    // the penalty, holding the bus for the whole exchange (and re-running
    // the codec when one is configured).
    ++Stats.EccRetries;
    if (Trace && Trace->wants(TraceCatFault))
      Trace->instant(TraceCatFault, "ecc_retry", TracePid, VaultIndex,
                     DataEnd, "req", P.Req.Id);
    DataEnd += Faults->eccRetryPenalty() + Beats * BeatInterval +
               Time.TsvCodecLatency;
  }
  B.recordColumnBurst(CmdTime, Beats, ColInterval);
  TheVault.reserveBus(DataStart, DataEnd);
  if (Page == PagePolicy::ClosedPage)
    B.closeRow();

  if (P.Req.IsWrite) {
    ++Stats.Writes;
    Stats.BytesWritten += P.Req.Bytes;
  } else {
    ++Stats.Reads;
    Stats.BytesRead += P.Req.Bytes;
  }
  Stats.BusBusy += DataEnd - DataStart;
  recordLatency(DataEnd - P.EnqueueTime);

  if (Trace && Trace->wants(TraceCatMem)) {
    Trace->span(TraceCatMem, P.Req.IsWrite ? "write" : "read", TracePid,
                VaultIndex, Now, DataEnd - Now, "bytes", P.Req.Bytes,
                "wait_ps", Now - P.EnqueueTime);
    Trace->span(TraceCatMem, "tsv_busy", TracePid, VaultIndex, DataStart,
                DataEnd - DataStart, "beats", Beats);
  }

  if (P.Done)
    scheduleCompletion(DataEnd, std::move(P.Done), P.Req);
  return DataEnd;
}
