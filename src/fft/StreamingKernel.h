//===- fft/StreamingKernel.h - Streaming FFT kernel model -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle/resource model of the paper's streaming 1D FFT kernel (§4.1):
/// a pipeline of radix blocks, DPP units and TFC units that "supports
/// processing continuous data streams so as to maximize design throughput
/// and the memory bandwidth utilization". The kernel ingests Lanes
/// elements per FPGA cycle with initiation interval 1; after a pipeline
/// fill it emits Lanes results per cycle indefinitely.
///
/// The achievable FPGA clock drops with problem size (bigger delay
/// buffers and twiddle ROMs stretch routing); achievableClockMHz() is
/// anchored at the paper's implementation points: 250 MHz at N = 2048,
/// 200 MHz at 4096, 180 MHz at 8192.
///
/// Functionally the kernel delegates to Fft1d: the model and the numbers
/// it streams are always consistent.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_STREAMINGKERNEL_H
#define FFT3D_FFT_STREAMINGKERNEL_H

#include "fft/DppUnit.h"
#include "fft/Fft1d.h"
#include "fft/TfcUnit.h"
#include "support/Units.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Aggregate resource estimate for one kernel instance.
struct KernelResources {
  std::uint64_t DelayBufferBytes = 0; ///< DPP data buffers.
  std::uint64_t TwiddleRomBytes = 0;  ///< TFC lookup tables.
  unsigned RealMultipliers = 0;       ///< DSP multipliers.
  unsigned RealAddSub = 0;            ///< Adder/subtractor LUT logic.
  unsigned Muxes = 0;                 ///< DPP multiplexers.
};

/// Butterfly architecture of the kernel data path.
enum class KernelRadix {
  /// Radix-4 stages with one radix-2 combine when log2(N) is odd (the
  /// paper's architecture; fewest multiplier stages).
  Radix4,
  /// Pure radix-2 pipeline: twice the stages, simpler blocks. Same N-1
  /// words of delay memory but more multiplier/register stages - the
  /// classic tradeoff figB quantifies.
  Radix2,
};

const char *kernelRadixName(KernelRadix Radix);

/// Streaming N-point FFT kernel with \p Lanes elements per cycle.
class StreamingKernel {
public:
  /// \p ClockMHz == 0 selects achievableClockMHz(FftSize).
  StreamingKernel(std::uint64_t FftSize, unsigned Lanes,
                  double ClockMHz = 0.0,
                  KernelRadix Radix = KernelRadix::Radix4);

  std::uint64_t fftSize() const { return Plan.size(); }
  unsigned lanes() const { return Lanes; }
  double clockMHz() const { return ClockMHz; }
  KernelRadix radix() const { return Radix; }
  Picos cyclePicos() const { return periodFromMHz(ClockMHz); }

  /// Butterfly stages of the selected architecture.
  unsigned numStages() const;

  /// One-direction stream bandwidth: Lanes * 8 B * clock, in GB/s.
  double streamGBps() const;

  /// Cycles from the first input beat to the first output beat: delay
  /// buffers plus per-stage pipeline registers.
  std::uint64_t pipelineFillCycles() const;
  Picos pipelineFillTime() const;

  /// Cycles to stream one N-point frame through (steady state).
  std::uint64_t cyclesPerFrame() const;

  /// Aggregate resources over all stages.
  KernelResources resources() const;

  /// Runs the transform the hardware would produce (numeric path).
  void runForward(std::vector<CplxF> &Frame) const { Plan.forward(Frame); }
  void runInverse(std::vector<CplxF> &Frame) const { Plan.inverse(Frame); }

  /// Post-place-and-route clock model anchored at the paper's points.
  static double achievableClockMHz(std::uint64_t FftSize);

private:
  Fft1d Plan;
  unsigned Lanes;
  double ClockMHz;
  KernelRadix Radix;
};

} // namespace fft3d

#endif // FFT3D_FFT_STREAMINGKERNEL_H
