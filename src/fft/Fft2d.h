//===- fft/Fft2d.h - Row-column 2D FFT --------------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The row-column 2D FFT algorithm (paper §2: "the well-known simplest
/// multidimensional FFT algorithm"): a 1D FFT over every row (phase 1)
/// followed by a 1D FFT over every column (phase 2). This is the numeric
/// half of the application; the performance half (how each phase streams
/// through the 3D memory) lives in src/core.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_FFT2D_H
#define FFT3D_FFT_FFT2D_H

#include "fft/Fft1d.h"
#include "fft/Matrix.h"

namespace fft3d {

/// Planned 2D transform over Rows x Cols matrices.
class Fft2d {
public:
  Fft2d(std::uint64_t Rows, std::uint64_t Cols);

  std::uint64_t rows() const { return NumRows; }
  std::uint64_t cols() const { return NumCols; }

  /// Forward row-column transform, in place.
  void forward(Matrix &M) const;

  /// Inverse transform (scaled by 1/(Rows*Cols)), in place.
  void inverse(Matrix &M) const;

  /// Runs only phase 1 (row-wise FFTs) - used by the phase engine.
  void rowPhase(Matrix &M, bool Inverse = false) const;

  /// Runs only phase 2 (column-wise FFTs).
  void colPhase(Matrix &M, bool Inverse = false) const;

private:
  std::uint64_t NumRows;
  std::uint64_t NumCols;
  Fft1d RowPlan; ///< Cols-point transform applied to each row.
  Fft1d ColPlan; ///< Rows-point transform applied to each column.
};

} // namespace fft3d

#endif // FFT3D_FFT_FFT2D_H
