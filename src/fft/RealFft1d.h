//===- fft/RealFft1d.h - Real-input FFT (r2c / c2r) -------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Real-input transforms via the classic packing trick: the N real
/// samples are folded into an N/2-point complex FFT and unpacked with
/// one twiddle pass, halving both the kernel size and the memory
/// traffic. Both workloads the paper's introduction motivates (images,
/// radar pulses) are real-valued at the sensor, so a production FFT
/// library needs this path; on the modelled hardware it means the same
/// streaming kernel serves 2x the sample rate.
///
/// The forward transform returns the N/2 + 1 non-redundant bins of the
/// Hermitian spectrum; the inverse reconstructs the real signal from
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_REALFFT1D_H
#define FFT3D_FFT_REALFFT1D_H

#include "fft/Fft1d.h"

#include <vector>

namespace fft3d {

/// Planned N-point real transform (N a power of two >= 4).
class RealFft1d {
public:
  explicit RealFft1d(std::uint64_t N);

  std::uint64_t size() const { return N; }

  /// Number of spectrum bins returned by forward(): N/2 + 1.
  std::uint64_t bins() const { return N / 2 + 1; }

  /// r2c: \p Input.size() == N; returns bins() spectrum values
  /// X[0..N/2] (X[0] and X[N/2] are purely real for real input).
  std::vector<CplxD> forward(const std::vector<double> &Input) const;

  /// c2r: \p Spectrum.size() == bins(); returns the N real samples,
  /// scaled so that inverse(forward(x)) == x.
  std::vector<double> inverse(const std::vector<CplxD> &Spectrum) const;

private:
  std::uint64_t N;
  Fft1d Half; ///< The N/2-point complex engine.
  TwiddleRom Rom; ///< N-th roots for the unpack/pack twiddle pass.
};

} // namespace fft3d

#endif // FFT3D_FFT_REALFFT1D_H
