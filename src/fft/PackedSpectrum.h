//===- fft/PackedSpectrum.h - Irredundant half-spectrum packing -*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packed representation that makes a real-input 2D FFT a
/// first-class, bandwidth-halving citizen of the dynamic-layout memory
/// path. Conjugate symmetry leaves a real row's r2c transform with
/// N/2 + 1 non-redundant bins, of which bin 0 (DC) and bin N/2 (Nyquist)
/// are purely real. Folding the Nyquist bin's real value into the unused
/// imaginary slot of the DC bin packs each row into exactly N/2 complex
/// elements - a power-of-two width, so the packed N x (N/2) intermediate
/// drops straight onto BlockDynamicLayout/BlockTrace and moves exactly
/// half the complex path's phase-2 bytes.
///
/// The column phase never unpacks. Packed columns 1..N/2-1 are ordinary
/// complex columns; packed column 0 carries z[r] = dc[r] + i*nyq[r],
/// two real sequences in one complex vector, and its plain complex FFT
/// Z = F(z) holds BOTH spectral columns via the Hermitian split
///
///   DC[k]  = (Z[k] + conj(Z[(N-k) mod N])) / 2
///   NY[k]  = (Z[k] - conj(Z[(N-k) mod N])) / (2i)
///
/// so the symmetry awareness lives entirely in pack/unpack - the kernels
/// and the layout machinery stay oblivious. unpackSpectrum() performs
/// the split when a consumer wants the logical Rows x (N/2 + 1) half
/// spectrum back.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_PACKEDSPECTRUM_H
#define FFT3D_FFT_PACKEDSPECTRUM_H

#include "fft/Matrix.h"
#include "fft/RealFft2d.h"

#include <vector>

namespace fft3d {

/// Folds the N/2 + 1 Hermitian bins of one real row's r2c transform
/// (\p Bins [0] and [N/2] purely real) into N/2 packed elements:
/// packed[0] = (Re bins[0], Re bins[N/2]), packed[k] = bins[k] else.
/// Pure data movement - no arithmetic, so the fold is exact.
std::vector<CplxF> packHermitianBins(const std::vector<CplxF> &Bins);
std::vector<CplxD> packHermitianBins(const std::vector<CplxD> &Bins);

/// Inverse of packHermitianBins (bit-exact round trip).
std::vector<CplxF> unpackHermitianBins(const std::vector<CplxF> &Packed);
std::vector<CplxD> unpackHermitianBins(const std::vector<CplxD> &Packed);

/// Host-side r2c row phase of a \p Rows x \p Cols real field, packed:
/// returns the Rows x (Cols/2) matrix of folded row spectra in storage
/// precision. This is the value stream the simulated phase 1 writes
/// through the permutation network.
Matrix packedRealRowTransform(const std::vector<double> &Field,
                              std::uint64_t Rows, std::uint64_t Cols);

/// Full host-side packed real 2D transform: packedRealRowTransform()
/// followed by one plain complex FFT down each of the Cols/2 packed
/// columns. The straight-line reference the dynamic-layout pipeline is
/// bit-identical to.
Matrix packedRealForward2d(const std::vector<double> &Field,
                           std::uint64_t Rows, std::uint64_t Cols);

/// Recovers the logical Rows x (Cols/2 + 1) half spectrum from a packed
/// 2D result: columns 1..Cols/2-1 copy over, the packed column 0 splits
/// into the DC (bin 0) and Nyquist (bin Cols/2) spectral columns. The
/// split runs in double precision; exact for an exact packed transform.
HalfSpectrum unpackSpectrum(const Matrix &Packed, std::uint64_t Cols);

/// Inverse of packedRealForward2d: inverse column FFTs on the packed
/// matrix, then per-row unfold + c2r. Round-trips the field to storage
/// precision.
std::vector<double> packedRealInverse2d(const Matrix &Packed,
                                        std::uint64_t Cols);

} // namespace fft3d

#endif // FFT3D_FFT_PACKEDSPECTRUM_H
