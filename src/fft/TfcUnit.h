//===- fft/TfcUnit.h - Twiddle factor computation unit ----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twiddle factor computation (TFC) unit of the streaming kernel
/// (paper Fig. 2c): lookup tables (functional ROMs) holding the twiddle
/// coefficients used by one butterfly stage, plus the complex multipliers
/// that apply them. "The size of each lookup table is determined by the
/// ordinal number of its present butterfly computation stage and the FFT
/// problem size"; "each complex number multiplier consists of four real
/// number multipliers and two real number adders/subtractors".
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_TFCUNIT_H
#define FFT3D_FFT_TFCUNIT_H

#include "fft/Complex.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// TFC unit feeding stage \p StageIndex of an N-point radix-R DIT kernel.
class TfcUnit {
public:
  TfcUnit(std::uint64_t FftSize, unsigned Radix, unsigned StageIndex,
          unsigned Lanes);

  std::uint64_t fftSize() const { return FftSize; }
  unsigned stageIndex() const { return StageIndex; }

  /// Distinct coefficient exponents per operand table at this stage
  /// (= R^StageIndex for DIT).
  std::uint64_t entriesPerTable() const { return TablePeriod; }

  /// Number of tables: one per non-trivial operand (R - 1).
  unsigned tableCount() const { return Radix - 1; }

  /// Total ROM words across the unit.
  std::uint64_t romWords() const { return TablePeriod * tableCount(); }

  /// ROM bytes at the stored element width.
  std::uint64_t romBytes() const { return romWords() * ElementBytes; }

  /// The coefficient applied to operand \p Q (1..R-1) at butterfly offset
  /// \p J (reduced mod entriesPerTable()). \p Conjugate for the inverse
  /// transform.
  CplxD factor(unsigned Q, std::uint64_t J, bool Conjugate = false) const;

  /// Complex multipliers instantiated (one per non-trivial operand per
  /// radix group across the lane width).
  unsigned complexMultipliers() const;

  /// Real DSP multipliers: 4 per complex multiplier.
  unsigned realMultipliers() const { return 4 * complexMultipliers(); }

  /// Real adders/subtractors inside the multipliers: 2 per complex one.
  unsigned realAddSub() const { return 2 * complexMultipliers(); }

private:
  std::uint64_t FftSize;
  unsigned Radix;
  unsigned StageIndex;
  unsigned Lanes;
  std::uint64_t TablePeriod;
  /// Tables[q-1][j] = W_{R^(s+1)}^(q*j).
  std::vector<std::vector<CplxD>> Tables;
};

} // namespace fft3d

#endif // FFT3D_FFT_TFCUNIT_H
