//===- fft/Convolution.h - FFT-based convolution utilities ------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Circular convolution via the convolution theorem - the operation the
/// image-filtering workload of the paper's introduction reduces to. The
/// 2D variant costs three transforms on the modelled accelerator (two
/// forward, one inverse).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_CONVOLUTION_H
#define FFT3D_FFT_CONVOLUTION_H

#include "fft/Matrix.h"

#include <vector>

namespace fft3d {

/// Circular 1D convolution: returns c with c[n] = sum_k a[k] * b[n - k mod N].
/// Both inputs must have the same power-of-two length.
std::vector<CplxD> circularConvolve(const std::vector<CplxD> &A,
                                    const std::vector<CplxD> &B);

/// Circular 2D convolution of two same-shape matrices (power-of-two
/// dimensions) via pointwise spectral multiplication.
Matrix circularConvolve2d(const Matrix &Image, const Matrix &Kernel);

/// Circular 2D convolution of two real Rows x Cols fields over the
/// irredundant half spectrum: r2c transforms, one SIMD pointwise
/// multiply over the Rows x (Cols/2 + 1) non-redundant bins, c2r
/// inverse. Same result as the complex path on real data at roughly
/// half the transform arithmetic and spectral traffic.
std::vector<double> circularConvolve2dReal(const std::vector<double> &Image,
                                           const std::vector<double> &Kernel,
                                           std::uint64_t Rows,
                                           std::uint64_t Cols);

/// Direct O(N^2) 1D circular convolution (test oracle).
std::vector<CplxD> circularConvolveDirect(const std::vector<CplxD> &A,
                                          const std::vector<CplxD> &B);

/// Direct O((Rows*Cols)^2) real 2D circular convolution (test oracle
/// for circularConvolve2dReal).
std::vector<double>
circularConvolve2dRealDirect(const std::vector<double> &Image,
                             const std::vector<double> &Kernel,
                             std::uint64_t Rows, std::uint64_t Cols);

} // namespace fft3d

#endif // FFT3D_FFT_CONVOLUTION_H
