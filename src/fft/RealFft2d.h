//===- fft/RealFft2d.h - 2D real-input FFT ----------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 2D transform of a real-valued Rows x Cols field: r2c row transforms
/// (keeping the Cols/2 + 1 non-redundant bins) followed by complex
/// column transforms. Images and radar dwell data are real at the
/// sensor, so this halves phase-1 arithmetic and - on the modelled
/// accelerator - phase-2 memory traffic, since only half the spectrum
/// columns exist.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_REALFFT2D_H
#define FFT3D_FFT_REALFFT2D_H

#include "fft/Fft1d.h"
#include "fft/RealFft1d.h"

#include <vector>

namespace fft3d {

/// Half-spectrum result of a 2D real transform: Rows x (Cols/2 + 1)
/// complex bins, row-major.
struct HalfSpectrum {
  std::uint64_t Rows = 0;
  std::uint64_t Bins = 0;
  std::vector<CplxD> Data;

  CplxD &at(std::uint64_t Row, std::uint64_t Bin) {
    return Data[Row * Bins + Bin];
  }
  CplxD at(std::uint64_t Row, std::uint64_t Bin) const {
    return Data[Row * Bins + Bin];
  }
};

/// Planned Rows x Cols real 2D transform.
class RealFft2d {
public:
  /// Both dimensions powers of two; Cols >= 4.
  RealFft2d(std::uint64_t Rows, std::uint64_t Cols);

  std::uint64_t rows() const { return NumRows; }
  std::uint64_t cols() const { return NumCols; }
  std::uint64_t bins() const { return NumCols / 2 + 1; }

  /// r2c: \p Field is Rows x Cols row-major; returns the half spectrum.
  HalfSpectrum forward(const std::vector<double> &Field) const;

  /// c2r: inverse of forward() (full round trip restores the field).
  std::vector<double> inverse(const HalfSpectrum &Spectrum) const;

private:
  std::uint64_t NumRows;
  std::uint64_t NumCols;
  RealFft1d RowPlan;
  Fft1d ColPlan;
};

} // namespace fft3d

#endif // FFT3D_FFT_REALFFT2D_H
