//===- fft/Matrix.h - Complex matrix container ------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The working N x N (or R x C) complex matrix the 2D FFT operates on.
/// Storage is row-major in host memory; where each element lives in the
/// simulated 3D memory is the DataLayout's business, not the matrix's.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_MATRIX_H
#define FFT3D_FFT_MATRIX_H

#include "fft/Complex.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Dense row-major complex matrix.
class Matrix {
public:
  Matrix() = default;
  Matrix(std::uint64_t Rows, std::uint64_t Cols);

  std::uint64_t rows() const { return NumRows; }
  std::uint64_t cols() const { return NumCols; }
  std::uint64_t elements() const { return NumRows * NumCols; }

  CplxF &at(std::uint64_t Row, std::uint64_t Col);
  CplxF at(std::uint64_t Row, std::uint64_t Col) const;

  std::vector<CplxF> &storage() { return Data; }
  const std::vector<CplxF> &storage() const { return Data; }

  /// Copies row \p Row into \p Out (resized to cols()).
  void copyRow(std::uint64_t Row, std::vector<CplxF> &Out) const;

  /// Copies column \p Col into \p Out (resized to rows()).
  void copyCol(std::uint64_t Col, std::vector<CplxF> &Out) const;

  /// Writes \p In (length cols()) into row \p Row.
  void setRow(std::uint64_t Row, const std::vector<CplxF> &In);

  /// Writes \p In (length rows()) into column \p Col.
  void setCol(std::uint64_t Col, const std::vector<CplxF> &In);

  /// In-place transpose (square matrices only).
  void transposeSquare();

  /// Widens to double precision, row-major.
  std::vector<CplxD> widened() const;

  /// Maximum absolute difference to another same-shape matrix.
  double maxAbsDiff(const Matrix &Other) const;

private:
  std::uint64_t NumRows = 0;
  std::uint64_t NumCols = 0;
  std::vector<CplxF> Data;
};

} // namespace fft3d

#endif // FFT3D_FFT_MATRIX_H
