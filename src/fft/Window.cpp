//===- fft/Window.cpp - Spectral window functions --------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Window.h"

#include "support/ErrorHandling.h"

#include <cassert>
#include <cmath>
#include <numbers>

using namespace fft3d;

const char *fft3d::windowKindName(WindowKind Kind) {
  switch (Kind) {
  case WindowKind::Rectangular:
    return "rectangular";
  case WindowKind::Hann:
    return "hann";
  case WindowKind::Hamming:
    return "hamming";
  case WindowKind::Blackman:
    return "blackman";
  }
  fft3d_unreachable("unknown WindowKind");
}

Window::Window(WindowKind Kind, std::uint64_t N) : Kind(Kind) {
  assert(N >= 2 && "window needs at least two points");
  Coefficients.resize(N);
  const double Den = static_cast<double>(N - 1);
  for (std::uint64_t I = 0; I != N; ++I) {
    const double X = static_cast<double>(I) / Den;
    double W = 1.0;
    switch (Kind) {
    case WindowKind::Rectangular:
      W = 1.0;
      break;
    case WindowKind::Hann:
      W = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * X);
      break;
    case WindowKind::Hamming:
      W = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * X);
      break;
    case WindowKind::Blackman:
      W = 0.42 - 0.5 * std::cos(2.0 * std::numbers::pi * X) +
          0.08 * std::cos(4.0 * std::numbers::pi * X);
      break;
    }
    Coefficients[I] = W;
  }
}

double Window::coherentGain() const {
  double Sum = 0.0;
  for (double W : Coefficients)
    Sum += W;
  return Sum / static_cast<double>(Coefficients.size());
}

double Window::equivalentNoiseBandwidth() const {
  double Sum = 0.0, SumSq = 0.0;
  for (double W : Coefficients) {
    Sum += W;
    SumSq += W * W;
  }
  return static_cast<double>(Coefficients.size()) * SumSq / (Sum * Sum);
}

void Window::apply(std::vector<double> &Signal) const {
  assert(Signal.size() == Coefficients.size() && "length mismatch");
  for (std::size_t I = 0; I != Signal.size(); ++I)
    Signal[I] *= Coefficients[I];
}

void Window::apply(std::vector<CplxD> &Signal) const {
  assert(Signal.size() == Coefficients.size() && "length mismatch");
  for (std::size_t I = 0; I != Signal.size(); ++I)
    Signal[I] *= Coefficients[I];
}

void Window::apply(std::vector<CplxF> &Signal) const {
  assert(Signal.size() == Coefficients.size() && "length mismatch");
  for (std::size_t I = 0; I != Signal.size(); ++I)
    Signal[I] *= static_cast<float>(Coefficients[I]);
}
