//===- fft/SimdKernels.cpp - Runtime-dispatched FFT kernels ---------------===//
//
// Part of the fft3d project.
//
// Every vector kernel below replays the scalar loop's IEEE operations in
// the same order: complex multiplies expand to (mul, mul, sub) for the
// real part and (mul, mul, add) for the imaginary part - the form GCC
// emits for std::complex on finite values - and the +/-j rotations and
// conjugations are pure sign flips. Nothing here uses FMA, so every
// level is bit-identical to the scalar reference on finite data.
//
//===----------------------------------------------------------------------===//

#include "fft/SimdKernels.h"

#include "fft/RadixBlock.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FFT3D_SIMD_X86 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define FFT3D_SIMD_NEON 1
#endif

using namespace fft3d;

//===----------------------------------------------------------------------===//
// Scalar reference kernels
//===----------------------------------------------------------------------===//

namespace {

void scalarRadix4Stage(CplxD *Data, std::uint64_t Len, std::uint64_t M,
                       const CplxD *Rom, std::uint64_t Stride, bool Inverse) {
  const std::uint64_t L = 4 * M;
  for (std::uint64_t Base = 0; Base != Len; Base += L) {
    for (std::uint64_t J = 0; J != M; ++J) {
      std::array<CplxD, 4> V;
      V[0] = Data[Base + J];
      for (unsigned Q = 1; Q != 4; ++Q) {
        const std::uint64_t Exp = Q * J * Stride;
        const CplxD W = Inverse ? std::conj(Rom[Exp]) : Rom[Exp];
        V[Q] = Data[Base + J + Q * M] * W;
      }
      if (Inverse)
        radix4ButterflyInverse(V);
      else
        radix4Butterfly(V);
      for (unsigned Q = 0; Q != 4; ++Q)
        Data[Base + J + Q * M] = V[Q];
    }
  }
}

void scalarRadix2Combine(CplxD *Data, const CplxD *Even, const CplxD *Odd,
                         std::uint64_t Half, const CplxD *Rom, bool Inverse) {
  for (std::uint64_t J = 0; J != Half; ++J) {
    const CplxD W = Inverse ? std::conj(Rom[J]) : Rom[J];
    CplxD A = Even[J];
    CplxD B = Odd[J] * W;
    radix2Butterfly(A, B);
    Data[J] = A;
    Data[J + Half] = B;
  }
}

void scalarPointwiseMul(CplxD *Acc, const CplxD *Other, std::uint64_t Len) {
  for (std::uint64_t I = 0; I != Len; ++I) {
    // Spelled out in the (mul, mul, sub / mul, mul, add) order the
    // vector kernels replay, rather than through operator*= whose
    // library implementation is not pinned to an operation order.
    const double Ar = Acc[I].real(), Ai = Acc[I].imag();
    const double Br = Other[I].real(), Bi = Other[I].imag();
    Acc[I] = CplxD(Ar * Br - Ai * Bi, Ar * Bi + Ai * Br);
  }
}

constexpr FftKernels ScalarKernels = {scalarRadix4Stage, scalarRadix2Combine,
                                      scalarPointwiseMul};

} // namespace

//===----------------------------------------------------------------------===//
// SSE2 kernels: one complex<double> per __m128d
//===----------------------------------------------------------------------===//

#if FFT3D_SIMD_X86

namespace {

inline __m128d loadC(const CplxD *P) {
  return _mm_loadu_pd(reinterpret_cast<const double *>(P));
}

inline void storeC(CplxD *P, __m128d V) {
  _mm_storeu_pd(reinterpret_cast<double *>(P), V);
}

/// (X.re*W.re - X.im*W.im, X.re*W.im + X.im*W.re), mul/mul/sub|add order.
inline __m128d cmulSse2(__m128d X, __m128d W) {
  const __m128d Xr = _mm_unpacklo_pd(X, X);
  const __m128d Xi = _mm_unpackhi_pd(X, X);
  const __m128d Ws = _mm_shuffle_pd(W, W, 1);
  const __m128d T1 = _mm_mul_pd(Xr, W);
  __m128d T2 = _mm_mul_pd(Xi, Ws);
  // Negate the real lane so the add below computes (sub, add); IEEE
  // a + (-b) == a - b, keeping this bit-identical to the scalar form.
  T2 = _mm_xor_pd(T2, _mm_set_pd(0.0, -0.0));
  return _mm_add_pd(T1, T2);
}

/// V * -j = (V.im, -V.re).
inline __m128d mulMinusJSse2(__m128d V) {
  return _mm_xor_pd(_mm_shuffle_pd(V, V, 1), _mm_set_pd(-0.0, 0.0));
}

/// V * +j = (-V.im, V.re).
inline __m128d mulPlusJSse2(__m128d V) {
  return _mm_xor_pd(_mm_shuffle_pd(V, V, 1), _mm_set_pd(0.0, -0.0));
}

inline __m128d conjSse2(__m128d V) {
  return _mm_xor_pd(V, _mm_set_pd(-0.0, 0.0));
}

void sse2Radix4Stage(CplxD *Data, std::uint64_t Len, std::uint64_t M,
                     const CplxD *Rom, std::uint64_t Stride, bool Inverse) {
  const std::uint64_t L = 4 * M;
  for (std::uint64_t Base = 0; Base != Len; Base += L) {
    for (std::uint64_t J = 0; J != M; ++J) {
      const std::uint64_t Idx = Base + J;
      __m128d X0 = loadC(Data + Idx);
      __m128d X1 = loadC(Data + Idx + M);
      __m128d X2 = loadC(Data + Idx + 2 * M);
      __m128d X3 = loadC(Data + Idx + 3 * M);
      __m128d W1 = loadC(Rom + J * Stride);
      __m128d W2 = loadC(Rom + 2 * J * Stride);
      __m128d W3 = loadC(Rom + 3 * J * Stride);
      if (Inverse) {
        W1 = conjSse2(W1);
        W2 = conjSse2(W2);
        W3 = conjSse2(W3);
      }
      X1 = cmulSse2(X1, W1);
      X2 = cmulSse2(X2, W2);
      X3 = cmulSse2(X3, W3);
      const __m128d T0 = _mm_add_pd(X0, X2);
      const __m128d T1 = _mm_sub_pd(X0, X2);
      const __m128d T2 = _mm_add_pd(X1, X3);
      const __m128d D = _mm_sub_pd(X1, X3);
      const __m128d T3 = Inverse ? mulPlusJSse2(D) : mulMinusJSse2(D);
      storeC(Data + Idx, _mm_add_pd(T0, T2));
      storeC(Data + Idx + M, _mm_add_pd(T1, T3));
      storeC(Data + Idx + 2 * M, _mm_sub_pd(T0, T2));
      storeC(Data + Idx + 3 * M, _mm_sub_pd(T1, T3));
    }
  }
}

void sse2Radix2Combine(CplxD *Data, const CplxD *Even, const CplxD *Odd,
                       std::uint64_t Half, const CplxD *Rom, bool Inverse) {
  for (std::uint64_t J = 0; J != Half; ++J) {
    __m128d W = loadC(Rom + J);
    if (Inverse)
      W = conjSse2(W);
    const __m128d A = loadC(Even + J);
    const __m128d B = cmulSse2(loadC(Odd + J), W);
    storeC(Data + J, _mm_add_pd(A, B));
    storeC(Data + J + Half, _mm_sub_pd(A, B));
  }
}

void sse2PointwiseMul(CplxD *Acc, const CplxD *Other, std::uint64_t Len) {
  for (std::uint64_t I = 0; I != Len; ++I)
    storeC(Acc + I, cmulSse2(loadC(Acc + I), loadC(Other + I)));
}

constexpr FftKernels Sse2Kernels = {sse2Radix4Stage, sse2Radix2Combine,
                                    sse2PointwiseMul};

} // namespace

//===----------------------------------------------------------------------===//
// AVX2 kernels: two complex<double> per __m256d
//===----------------------------------------------------------------------===//

namespace {

#define FFT3D_AVX2 __attribute__((target("avx2")))

FFT3D_AVX2 inline __m256d load2C(const CplxD *P) {
  return _mm256_loadu_pd(reinterpret_cast<const double *>(P));
}

FFT3D_AVX2 inline void store2C(CplxD *P, __m256d V) {
  _mm256_storeu_pd(reinterpret_cast<double *>(P), V);
}

/// Twiddle pair (Rom[E], Rom[E + Step]) - consecutive J share a stage, so
/// their exponents differ by Q*Stride, not 1.
FFT3D_AVX2 inline __m256d loadPair(const CplxD *Rom, std::uint64_t E,
                                   std::uint64_t Step) {
  const __m128d Lo = _mm_loadu_pd(reinterpret_cast<const double *>(Rom + E));
  const __m128d Hi =
      _mm_loadu_pd(reinterpret_cast<const double *>(Rom + E + Step));
  return _mm256_insertf128_pd(_mm256_castpd128_pd256(Lo), Hi, 1);
}

FFT3D_AVX2 inline __m256d cmulAvx2(__m256d X, __m256d W) {
  const __m256d Xr = _mm256_movedup_pd(X);
  const __m256d Xi = _mm256_permute_pd(X, 0xF);
  const __m256d Ws = _mm256_permute_pd(W, 0x5);
  const __m256d T1 = _mm256_mul_pd(Xr, W);
  const __m256d T2 = _mm256_mul_pd(Xi, Ws);
  // addsub: even lanes T1-T2 (real), odd lanes T1+T2 (imag) - the exact
  // scalar (mul, mul, sub / mul, mul, add) sequence per element.
  return _mm256_addsub_pd(T1, T2);
}

FFT3D_AVX2 inline __m256d mulMinusJAvx2(__m256d V) {
  return _mm256_xor_pd(_mm256_permute_pd(V, 0x5),
                       _mm256_set_pd(-0.0, 0.0, -0.0, 0.0));
}

FFT3D_AVX2 inline __m256d mulPlusJAvx2(__m256d V) {
  return _mm256_xor_pd(_mm256_permute_pd(V, 0x5),
                       _mm256_set_pd(0.0, -0.0, 0.0, -0.0));
}

FFT3D_AVX2 inline __m256d conjAvx2(__m256d V) {
  return _mm256_xor_pd(V, _mm256_set_pd(-0.0, 0.0, -0.0, 0.0));
}

FFT3D_AVX2 void avx2Radix4Stage(CplxD *Data, std::uint64_t Len,
                                std::uint64_t M, const CplxD *Rom,
                                std::uint64_t Stride, bool Inverse) {
  if (M < 2) {
    // The first stage (M == 1) has a single butterfly per span; run it
    // through the scalar path rather than masking half a vector.
    scalarRadix4Stage(Data, Len, M, Rom, Stride, Inverse);
    return;
  }
  const std::uint64_t L = 4 * M;
  for (std::uint64_t Base = 0; Base != Len; Base += L) {
    for (std::uint64_t J = 0; J != M; J += 2) {
      const std::uint64_t Idx = Base + J;
      __m256d X0 = load2C(Data + Idx);
      __m256d X1 = load2C(Data + Idx + M);
      __m256d X2 = load2C(Data + Idx + 2 * M);
      __m256d X3 = load2C(Data + Idx + 3 * M);
      __m256d W1 = loadPair(Rom, J * Stride, Stride);
      __m256d W2 = loadPair(Rom, 2 * J * Stride, 2 * Stride);
      __m256d W3 = loadPair(Rom, 3 * J * Stride, 3 * Stride);
      if (Inverse) {
        W1 = conjAvx2(W1);
        W2 = conjAvx2(W2);
        W3 = conjAvx2(W3);
      }
      X1 = cmulAvx2(X1, W1);
      X2 = cmulAvx2(X2, W2);
      X3 = cmulAvx2(X3, W3);
      const __m256d T0 = _mm256_add_pd(X0, X2);
      const __m256d T1 = _mm256_sub_pd(X0, X2);
      const __m256d T2 = _mm256_add_pd(X1, X3);
      const __m256d D = _mm256_sub_pd(X1, X3);
      const __m256d T3 = Inverse ? mulPlusJAvx2(D) : mulMinusJAvx2(D);
      store2C(Data + Idx, _mm256_add_pd(T0, T2));
      store2C(Data + Idx + M, _mm256_add_pd(T1, T3));
      store2C(Data + Idx + 2 * M, _mm256_sub_pd(T0, T2));
      store2C(Data + Idx + 3 * M, _mm256_sub_pd(T1, T3));
    }
  }
}

FFT3D_AVX2 void avx2Radix2Combine(CplxD *Data, const CplxD *Even,
                                  const CplxD *Odd, std::uint64_t Half,
                                  const CplxD *Rom, bool Inverse) {
  std::uint64_t J = 0;
  for (; J + 2 <= Half; J += 2) {
    __m256d W = load2C(Rom + J);
    if (Inverse)
      W = conjAvx2(W);
    const __m256d A = load2C(Even + J);
    const __m256d B = cmulAvx2(load2C(Odd + J), W);
    store2C(Data + J, _mm256_add_pd(A, B));
    store2C(Data + J + Half, _mm256_sub_pd(A, B));
  }
  if (J != Half)
    scalarRadix2Combine(Data + J, Even + J, Odd + J, Half - J, Rom + J,
                        Inverse);
}

FFT3D_AVX2 void avx2PointwiseMul(CplxD *Acc, const CplxD *Other,
                                 std::uint64_t Len) {
  std::uint64_t I = 0;
  for (; I + 2 <= Len; I += 2)
    store2C(Acc + I, cmulAvx2(load2C(Acc + I), load2C(Other + I)));
  if (I != Len)
    scalarPointwiseMul(Acc + I, Other + I, Len - I);
}

#undef FFT3D_AVX2

constexpr FftKernels Avx2Kernels = {avx2Radix4Stage, avx2Radix2Combine,
                                    avx2PointwiseMul};

} // namespace

#endif // FFT3D_SIMD_X86

//===----------------------------------------------------------------------===//
// NEON kernels: one complex<double> per float64x2_t
//===----------------------------------------------------------------------===//

#if FFT3D_SIMD_NEON

namespace {

inline float64x2_t loadCNeon(const CplxD *P) {
  return vld1q_f64(reinterpret_cast<const double *>(P));
}

inline void storeCNeon(CplxD *P, float64x2_t V) {
  vst1q_f64(reinterpret_cast<double *>(P), V);
}

inline float64x2_t signFlip(float64x2_t V, std::uint64_t LowMask,
                            std::uint64_t HighMask) {
  const uint64x2_t Mask = {LowMask, HighMask};
  return vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(V), Mask));
}

constexpr std::uint64_t SignBit = 0x8000000000000000ULL;

inline float64x2_t cmulNeon(float64x2_t X, float64x2_t W) {
  const float64x2_t Xr = vdupq_laneq_f64(X, 0);
  const float64x2_t Xi = vdupq_laneq_f64(X, 1);
  const float64x2_t Ws = vextq_f64(W, W, 1);
  const float64x2_t T1 = vmulq_f64(Xr, W);
  const float64x2_t T2 = signFlip(vmulq_f64(Xi, Ws), SignBit, 0);
  return vaddq_f64(T1, T2);
}

inline float64x2_t mulMinusJNeon(float64x2_t V) {
  return signFlip(vextq_f64(V, V, 1), 0, SignBit);
}

inline float64x2_t mulPlusJNeon(float64x2_t V) {
  return signFlip(vextq_f64(V, V, 1), SignBit, 0);
}

inline float64x2_t conjNeon(float64x2_t V) {
  return signFlip(V, 0, SignBit);
}

void neonRadix4Stage(CplxD *Data, std::uint64_t Len, std::uint64_t M,
                     const CplxD *Rom, std::uint64_t Stride, bool Inverse) {
  const std::uint64_t L = 4 * M;
  for (std::uint64_t Base = 0; Base != Len; Base += L) {
    for (std::uint64_t J = 0; J != M; ++J) {
      const std::uint64_t Idx = Base + J;
      float64x2_t X0 = loadCNeon(Data + Idx);
      float64x2_t X1 = loadCNeon(Data + Idx + M);
      float64x2_t X2 = loadCNeon(Data + Idx + 2 * M);
      float64x2_t X3 = loadCNeon(Data + Idx + 3 * M);
      float64x2_t W1 = loadCNeon(Rom + J * Stride);
      float64x2_t W2 = loadCNeon(Rom + 2 * J * Stride);
      float64x2_t W3 = loadCNeon(Rom + 3 * J * Stride);
      if (Inverse) {
        W1 = conjNeon(W1);
        W2 = conjNeon(W2);
        W3 = conjNeon(W3);
      }
      X1 = cmulNeon(X1, W1);
      X2 = cmulNeon(X2, W2);
      X3 = cmulNeon(X3, W3);
      const float64x2_t T0 = vaddq_f64(X0, X2);
      const float64x2_t T1 = vsubq_f64(X0, X2);
      const float64x2_t T2 = vaddq_f64(X1, X3);
      const float64x2_t D = vsubq_f64(X1, X3);
      const float64x2_t T3 = Inverse ? mulPlusJNeon(D) : mulMinusJNeon(D);
      storeCNeon(Data + Idx, vaddq_f64(T0, T2));
      storeCNeon(Data + Idx + M, vaddq_f64(T1, T3));
      storeCNeon(Data + Idx + 2 * M, vsubq_f64(T0, T2));
      storeCNeon(Data + Idx + 3 * M, vsubq_f64(T1, T3));
    }
  }
}

void neonRadix2Combine(CplxD *Data, const CplxD *Even, const CplxD *Odd,
                       std::uint64_t Half, const CplxD *Rom, bool Inverse) {
  for (std::uint64_t J = 0; J != Half; ++J) {
    float64x2_t W = loadCNeon(Rom + J);
    if (Inverse)
      W = conjNeon(W);
    const float64x2_t A = loadCNeon(Even + J);
    const float64x2_t B = cmulNeon(loadCNeon(Odd + J), W);
    storeCNeon(Data + J, vaddq_f64(A, B));
    storeCNeon(Data + J + Half, vsubq_f64(A, B));
  }
}

void neonPointwiseMul(CplxD *Acc, const CplxD *Other, std::uint64_t Len) {
  for (std::uint64_t I = 0; I != Len; ++I)
    storeCNeon(Acc + I, cmulNeon(loadCNeon(Acc + I), loadCNeon(Other + I)));
}

constexpr FftKernels NeonKernels = {neonRadix4Stage, neonRadix2Combine,
                                    neonPointwiseMul};

} // namespace

#endif // FFT3D_SIMD_NEON

//===----------------------------------------------------------------------===//
// Detection and dispatch
//===----------------------------------------------------------------------===//

namespace {

SimdLevel bestSupportedAtOrBelow(SimdLevel Request) {
  for (int V = static_cast<int>(Request); V > 0; --V)
    if (simdLevelSupported(static_cast<SimdLevel>(V)))
      return static_cast<SimdLevel>(V);
  return SimdLevel::Scalar;
}

SimdLevel levelFromEnv(const char *Name) {
  if (std::strcmp(Name, "scalar") == 0)
    return SimdLevel::Scalar;
  if (std::strcmp(Name, "sse2") == 0)
    return SimdLevel::Sse2;
  if (std::strcmp(Name, "avx2") == 0)
    return SimdLevel::Avx2;
  if (std::strcmp(Name, "neon") == 0)
    return SimdLevel::Neon;
  return detectSimdLevel();
}

std::atomic<SimdLevel> &activeLevelStorage() {
  static std::atomic<SimdLevel> Level{bestSupportedAtOrBelow(
      std::getenv("FFT3D_SIMD") ? levelFromEnv(std::getenv("FFT3D_SIMD"))
                                : detectSimdLevel())};
  return Level;
}

} // namespace

const char *fft3d::simdLevelName(SimdLevel Level) {
  switch (Level) {
  case SimdLevel::Scalar:
    return "scalar";
  case SimdLevel::Sse2:
    return "sse2";
  case SimdLevel::Avx2:
    return "avx2";
  case SimdLevel::Neon:
    return "neon";
  }
  return "scalar";
}

bool fft3d::simdLevelSupported(SimdLevel Level) {
  switch (Level) {
  case SimdLevel::Scalar:
    return true;
  case SimdLevel::Sse2:
#if FFT3D_SIMD_X86
    return __builtin_cpu_supports("sse2");
#else
    return false;
#endif
  case SimdLevel::Avx2:
#if FFT3D_SIMD_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
  case SimdLevel::Neon:
#if FFT3D_SIMD_NEON
    return true;
#else
    return false;
#endif
  }
  return false;
}

SimdLevel fft3d::detectSimdLevel() {
#if FFT3D_SIMD_X86
  if (__builtin_cpu_supports("avx2"))
    return SimdLevel::Avx2;
  if (__builtin_cpu_supports("sse2"))
    return SimdLevel::Sse2;
  return SimdLevel::Scalar;
#elif FFT3D_SIMD_NEON
  return SimdLevel::Neon;
#else
  return SimdLevel::Scalar;
#endif
}

SimdLevel fft3d::activeSimdLevel() {
  return activeLevelStorage().load(std::memory_order_relaxed);
}

SimdLevel fft3d::setSimdLevel(SimdLevel Level) {
  const SimdLevel Selected = bestSupportedAtOrBelow(Level);
  activeLevelStorage().store(Selected, std::memory_order_relaxed);
  return Selected;
}

const FftKernels &fft3d::kernelsFor(SimdLevel Level) {
  switch (bestSupportedAtOrBelow(Level)) {
#if FFT3D_SIMD_X86
  case SimdLevel::Sse2:
    return Sse2Kernels;
  case SimdLevel::Avx2:
    return Avx2Kernels;
#endif
#if FFT3D_SIMD_NEON
  case SimdLevel::Neon:
    return NeonKernels;
#endif
  default:
    return ScalarKernels;
  }
}

const FftKernels &fft3d::activeKernels() {
  return kernelsFor(activeSimdLevel());
}
