//===- fft/Convolution.cpp - FFT-based convolution utilities --------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Convolution.h"

#include "fft/Fft1d.h"
#include "fft/Fft2d.h"
#include "fft/RealFft2d.h"
#include "fft/SimdKernels.h"
#include "support/ErrorHandling.h"

#include <cassert>

using namespace fft3d;

std::vector<CplxD> fft3d::circularConvolve(const std::vector<CplxD> &A,
                                           const std::vector<CplxD> &B) {
  if (A.size() != B.size())
    reportFatalError("convolution operands must have equal length");
  const Fft1d Plan(A.size());
  std::vector<CplxD> Fa = A, Fb = B;
  Plan.forward(Fa);
  Plan.forward(Fb);
  activeKernels().PointwiseMul(Fa.data(), Fb.data(), Fa.size());
  Plan.inverse(Fa);
  return Fa;
}

Matrix fft3d::circularConvolve2d(const Matrix &Image, const Matrix &Kernel) {
  if (Image.rows() != Kernel.rows() || Image.cols() != Kernel.cols())
    reportFatalError("convolution operands must have equal shape");
  const Fft2d Plan(Image.rows(), Image.cols());
  Matrix FImg = Image, FKer = Kernel;
  Plan.forward(FImg);
  Plan.forward(FKer);
  for (std::uint64_t R = 0; R != Image.rows(); ++R)
    for (std::uint64_t C = 0; C != Image.cols(); ++C)
      FImg.at(R, C) *= FKer.at(R, C);
  Plan.inverse(FImg);
  return FImg;
}

std::vector<double>
fft3d::circularConvolve2dReal(const std::vector<double> &Image,
                              const std::vector<double> &Kernel,
                              std::uint64_t Rows, std::uint64_t Cols) {
  if (Image.size() != Rows * Cols || Kernel.size() != Rows * Cols)
    reportFatalError("convolution operands must match the given shape");
  const RealFft2d Plan(Rows, Cols);
  HalfSpectrum FImg = Plan.forward(Image);
  const HalfSpectrum FKer = Plan.forward(Kernel);
  // One dispatch over the whole Rows x (Cols/2 + 1) wedge: the half
  // spectrum is the complete non-redundant product, so this multiply is
  // half the complex path's work with no symmetry special-casing.
  activeKernels().PointwiseMul(FImg.Data.data(), FKer.Data.data(),
                               FImg.Data.size());
  return Plan.inverse(FImg);
}

std::vector<CplxD>
fft3d::circularConvolveDirect(const std::vector<CplxD> &A,
                              const std::vector<CplxD> &B) {
  assert(A.size() == B.size() && "length mismatch");
  const std::size_t N = A.size();
  std::vector<CplxD> Out(N, CplxD(0, 0));
  for (std::size_t I = 0; I != N; ++I)
    for (std::size_t K = 0; K != N; ++K)
      Out[I] += A[K] * B[(I + N - K) % N];
  return Out;
}

std::vector<double>
fft3d::circularConvolve2dRealDirect(const std::vector<double> &Image,
                                    const std::vector<double> &Kernel,
                                    std::uint64_t Rows, std::uint64_t Cols) {
  assert(Image.size() == Rows * Cols && Kernel.size() == Rows * Cols &&
         "shape mismatch");
  std::vector<double> Out(Rows * Cols, 0.0);
  for (std::uint64_t R = 0; R != Rows; ++R)
    for (std::uint64_t C = 0; C != Cols; ++C) {
      double Acc = 0.0;
      for (std::uint64_t Kr = 0; Kr != Rows; ++Kr)
        for (std::uint64_t Kc = 0; Kc != Cols; ++Kc)
          Acc += Image[Kr * Cols + Kc] *
                 Kernel[((R + Rows - Kr) % Rows) * Cols +
                        ((C + Cols - Kc) % Cols)];
      Out[R * Cols + C] = Acc;
    }
  return Out;
}
