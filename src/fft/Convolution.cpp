//===- fft/Convolution.cpp - FFT-based convolution utilities --------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Convolution.h"

#include "fft/Fft1d.h"
#include "fft/Fft2d.h"
#include "support/ErrorHandling.h"

#include <cassert>

using namespace fft3d;

std::vector<CplxD> fft3d::circularConvolve(const std::vector<CplxD> &A,
                                           const std::vector<CplxD> &B) {
  if (A.size() != B.size())
    reportFatalError("convolution operands must have equal length");
  const Fft1d Plan(A.size());
  std::vector<CplxD> Fa = A, Fb = B;
  Plan.forward(Fa);
  Plan.forward(Fb);
  for (std::size_t I = 0; I != Fa.size(); ++I)
    Fa[I] *= Fb[I];
  Plan.inverse(Fa);
  return Fa;
}

Matrix fft3d::circularConvolve2d(const Matrix &Image, const Matrix &Kernel) {
  if (Image.rows() != Kernel.rows() || Image.cols() != Kernel.cols())
    reportFatalError("convolution operands must have equal shape");
  const Fft2d Plan(Image.rows(), Image.cols());
  Matrix FImg = Image, FKer = Kernel;
  Plan.forward(FImg);
  Plan.forward(FKer);
  for (std::uint64_t R = 0; R != Image.rows(); ++R)
    for (std::uint64_t C = 0; C != Image.cols(); ++C)
      FImg.at(R, C) *= FKer.at(R, C);
  Plan.inverse(FImg);
  return FImg;
}

std::vector<CplxD>
fft3d::circularConvolveDirect(const std::vector<CplxD> &A,
                              const std::vector<CplxD> &B) {
  assert(A.size() == B.size() && "length mismatch");
  const std::size_t N = A.size();
  std::vector<CplxD> Out(N, CplxD(0, 0));
  for (std::size_t I = 0; I != N; ++I)
    for (std::size_t K = 0; K != N; ++K)
      Out[I] += A[K] * B[(I + N - K) % N];
  return Out;
}
