//===- fft/Bluestein.h - Arbitrary-length DFT (chirp-z) ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bluestein's algorithm: an N-point DFT for *any* N, via a circular
/// convolution of chirp-modulated sequences carried out with power-of-two
/// FFTs. This is how non-power-of-two problem sizes (the subject of the
/// paper's reference [15]) ride on the same radix-4 streaming hardware:
/// the accelerator only ever executes power-of-two transforms plus
/// pointwise chirp multiplies.
///
///   X[k] = c*(k) * IFFT( FFT(x.c) .* FFT(conj-chirp) )[k],
///   c(n) = exp(-i*pi*n^2/N)
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_BLUESTEIN_H
#define FFT3D_FFT_BLUESTEIN_H

#include "fft/Complex.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace fft3d {

class Fft1d;

/// Planned arbitrary-length transform (precomputes the chirp and the
/// convolution kernel's spectrum).
class BluesteinFft {
public:
  /// \p N >= 1, any value.
  explicit BluesteinFft(std::uint64_t N);
  ~BluesteinFft();

  std::uint64_t size() const { return N; }

  /// Power-of-two length of the internal convolution FFTs.
  std::uint64_t convolutionSize() const { return M; }

  /// Forward DFT, any length. \p Data.size() == N.
  void forward(std::vector<CplxD> &Data) const;

  /// Inverse DFT (scaled by 1/N).
  void inverse(std::vector<CplxD> &Data) const;

private:
  void transform(std::vector<CplxD> &Data, bool Inverse) const;

  std::uint64_t N;
  std::uint64_t M;
  /// Chirp c(n) = exp(-i*pi*n^2/N), n in [0, N).
  std::vector<CplxD> Chirp;
  /// FFT_M of the wrapped conjugate chirp (the convolution kernel).
  std::vector<CplxD> KernelSpectrum;
  std::unique_ptr<Fft1d> ConvPlan;
};

} // namespace fft3d

#endif // FFT3D_FFT_BLUESTEIN_H
