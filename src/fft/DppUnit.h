//===- fft/DppUnit.h - Data path permutation unit ---------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data path permutation (DPP) unit between butterfly stages of the
/// streaming kernel (paper Fig. 2b): multiplexers plus data buffers that
/// delay and reorder the stream so stage s+1 sees its operands in the
/// right slots. "The size of each data buffer depends on the ordinal
/// number of its present butterfly computation stage and the FFT problem
/// size."
///
/// The resource model follows the radix-R delay-feedback realization of
/// a decimation-in-time pipeline: the DPP in front of stage s (0-based
/// from the input) holds (R-1) * R^s words in total; summed over all
/// stages that is N - 1 words - the classic SDF memory bound. The
/// functional model is
/// the inter-stage stride permutation, checked in tests against the
/// mathematical definition and against the full transform (composing all
/// inter-stage permutations yields the digit reversal).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_DPPUNIT_H
#define FFT3D_FFT_DPPUNIT_H

#include "fft/Complex.h"
#include "permute/Permutation.h"

#include <cstdint>

namespace fft3d {

/// The DPP unit between stage \p StageIndex and stage StageIndex+1 of an
/// N-point radix-R streaming FFT.
class DppUnit {
public:
  /// \p StageIndex in [0, numStages); \p Lanes is the stream width.
  DppUnit(std::uint64_t FftSize, unsigned Radix, unsigned StageIndex,
          unsigned Lanes);

  std::uint64_t fftSize() const { return FftSize; }
  unsigned radix() const { return Radix; }
  unsigned stageIndex() const { return StageIndex; }
  unsigned lanes() const { return Lanes; }

  /// Total buffer words across the unit's data buffers.
  std::uint64_t bufferWords() const;

  /// Buffer bytes at the stored element width.
  std::uint64_t bufferBytes() const { return bufferWords() * ElementBytes; }

  /// Multiplexer count: per radix group, 2*R muxes of fan-in R (the paper
  /// counts eight 4-to-1 muxes per radix-4 group).
  unsigned muxCount() const;

  /// Cycles a value spends in the unit at steady state.
  std::uint64_t latencyCycles() const;

  /// The inter-stage reordering as an explicit permutation of the whole
  /// N-point frame: a stride-R^(StageIndex+1) permutation section.
  Permutation framePermutation() const;

private:
  std::uint64_t FftSize;
  unsigned Radix;
  unsigned StageIndex;
  unsigned Lanes;
};

} // namespace fft3d

#endif // FFT3D_FFT_DPPUNIT_H
