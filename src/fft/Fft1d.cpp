//===- fft/Fft1d.cpp - 1D FFT engine ---------------------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Fft1d.h"

#include "fft/RadixBlock.h"
#include "support/MathUtils.h"

#include <array>
#include <cassert>

using namespace fft3d;

Fft1d::Fft1d(std::uint64_t N) : N(N), Rom(N) {
  assert(isPowerOf2(N) && N >= 2 && "transform size must be a power of two");
  const unsigned Log2N = log2Exact(N);
  HasRadix2 = (Log2N % 2) != 0;
  Radix4Stages = (Log2N - (HasRadix2 ? 1 : 0)) / 2;
}

void Fft1d::forward(std::vector<CplxF> &Data) const {
  std::vector<CplxD> Wide(Data.size());
  for (std::size_t I = 0; I != Data.size(); ++I)
    Wide[I] = widen(Data[I]);
  forward(Wide);
  for (std::size_t I = 0; I != Data.size(); ++I)
    Data[I] = narrow(Wide[I]);
}

void Fft1d::inverse(std::vector<CplxF> &Data) const {
  std::vector<CplxD> Wide(Data.size());
  for (std::size_t I = 0; I != Data.size(); ++I)
    Wide[I] = widen(Data[I]);
  inverse(Wide);
  for (std::size_t I = 0; I != Data.size(); ++I)
    Data[I] = narrow(Wide[I]);
}

void Fft1d::forward(std::vector<CplxD> &Data) const {
  transform(Data, /*Inverse=*/false);
}

void Fft1d::inverse(std::vector<CplxD> &Data) const {
  transform(Data, /*Inverse=*/true);
  const double Scale = 1.0 / static_cast<double>(N);
  for (CplxD &Value : Data)
    Value *= Scale;
}

void Fft1d::transform(std::vector<CplxD> &Data, bool Inverse) const {
  assert(Data.size() == N && "input length must match the plan");
  if (!HasRadix2) {
    radix4InPlace(Data.data(), N, Inverse);
    return;
  }

  // Odd log2(N): one decimation-in-time radix-2 split; both halves are
  // powers of four.
  const std::uint64_t Half = N / 2;
  std::vector<CplxD> Even(Half), Odd(Half);
  for (std::uint64_t I = 0; I != Half; ++I) {
    Even[I] = Data[2 * I];
    Odd[I] = Data[2 * I + 1];
  }
  radix4InPlace(Even.data(), Half, Inverse);
  radix4InPlace(Odd.data(), Half, Inverse);
  for (std::uint64_t J = 0; J != Half; ++J) {
    const CplxD W = Inverse ? Rom.conjRoot(J) : Rom.root(J);
    CplxD A = Even[J];
    CplxD B = Odd[J] * W;
    radix2Butterfly(A, B);
    Data[J] = A;
    Data[J + Half] = B;
  }
}

void Fft1d::radix4InPlace(CplxD *Data, std::uint64_t Len, bool Inverse) const {
  assert(isPowerOf(Len, 4) && "radix-4 path requires a power of four");
  const unsigned Digits = digitCount(Len, 4);

  // Input reordering: base-4 digit reversal (the job the streaming DPP
  // units perform between stages in hardware).
  for (std::uint64_t I = 0; I != Len; ++I) {
    const std::uint64_t J = digitReverse(I, 4, Digits);
    if (J > I)
      std::swap(Data[I], Data[J]);
  }

  // Twiddles for span L come from the shared ROM with stride Rom.size()/L.
  const std::uint64_t RomN = Rom.size();
  for (std::uint64_t M = 1, L = 4; M < Len; M = L, L *= 4) {
    const std::uint64_t Stride = RomN / L;
    for (std::uint64_t Base = 0; Base != Len; Base += L) {
      for (std::uint64_t J = 0; J != M; ++J) {
        std::array<CplxD, 4> V;
        V[0] = Data[Base + J];
        for (unsigned Q = 1; Q != 4; ++Q) {
          const std::uint64_t Exp = Q * J * Stride;
          const CplxD W = Inverse ? Rom.conjRoot(Exp) : Rom.root(Exp);
          V[Q] = Data[Base + J + Q * M] * W;
        }
        if (Inverse)
          radix4ButterflyInverse(V);
        else
          radix4Butterfly(V);
        for (unsigned Q = 0; Q != 4; ++Q)
          Data[Base + J + Q * M] = V[Q];
      }
    }
  }
}
