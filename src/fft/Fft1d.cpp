//===- fft/Fft1d.cpp - 1D FFT engine ---------------------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Fft1d.h"

#include "fft/SimdKernels.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

namespace {

/// Per-thread scratch, so repeated transforms (every row of a 2D FFT, a
/// pool worker's whole sweep cell) reuse one allocation instead of
/// paying a heap round trip per call.
std::vector<CplxD> &threadScratch() {
  static thread_local std::vector<CplxD> Scratch;
  return Scratch;
}

std::vector<CplxD> &threadWideScratch() {
  static thread_local std::vector<CplxD> Wide;
  return Wide;
}

} // namespace

Fft1d::Fft1d(std::uint64_t N) : N(N), Rom(N) {
  assert(isPowerOf2(N) && N >= 2 && "transform size must be a power of two");
  const unsigned Log2N = log2Exact(N);
  HasRadix2 = (Log2N % 2) != 0;
  Radix4Stages = (Log2N - (HasRadix2 ? 1 : 0)) / 2;
}

void Fft1d::forward(std::vector<CplxF> &Data) const {
  std::vector<CplxD> &Wide = threadWideScratch();
  Wide.resize(Data.size());
  for (std::size_t I = 0; I != Data.size(); ++I)
    Wide[I] = widen(Data[I]);
  forward(Wide);
  for (std::size_t I = 0; I != Data.size(); ++I)
    Data[I] = narrow(Wide[I]);
}

void Fft1d::inverse(std::vector<CplxF> &Data) const {
  std::vector<CplxD> &Wide = threadWideScratch();
  Wide.resize(Data.size());
  for (std::size_t I = 0; I != Data.size(); ++I)
    Wide[I] = widen(Data[I]);
  inverse(Wide);
  for (std::size_t I = 0; I != Data.size(); ++I)
    Data[I] = narrow(Wide[I]);
}

void Fft1d::forward(std::vector<CplxD> &Data) const {
  transform(Data, /*Inverse=*/false);
}

void Fft1d::inverse(std::vector<CplxD> &Data) const {
  transform(Data, /*Inverse=*/true);
  const double Scale = 1.0 / static_cast<double>(N);
  for (CplxD &Value : Data)
    Value *= Scale;
}

void Fft1d::transform(std::vector<CplxD> &Data, bool Inverse) const {
  assert(Data.size() == N && "input length must match the plan");
  if (!HasRadix2) {
    radix4InPlace(Data.data(), N, Inverse);
    return;
  }

  // Odd log2(N): one decimation-in-time radix-2 split; both halves are
  // powers of four. The deinterleaved halves live side by side in one
  // per-thread scratch buffer.
  const std::uint64_t Half = N / 2;
  std::vector<CplxD> &Scratch = threadScratch();
  Scratch.resize(N);
  CplxD *Even = Scratch.data();
  CplxD *Odd = Scratch.data() + Half;
  for (std::uint64_t I = 0; I != Half; ++I) {
    Even[I] = Data[2 * I];
    Odd[I] = Data[2 * I + 1];
  }
  radix4InPlace(Even, Half, Inverse);
  radix4InPlace(Odd, Half, Inverse);
  activeKernels().Radix2Combine(Data.data(), Even, Odd, Half, Rom.data(),
                                Inverse);
}

void Fft1d::radix4InPlace(CplxD *Data, std::uint64_t Len, bool Inverse) const {
  assert(isPowerOf(Len, 4) && "radix-4 path requires a power of four");
  const unsigned Digits = digitCount(Len, 4);

  // Input reordering: base-4 digit reversal (the job the streaming DPP
  // units perform between stages in hardware).
  for (std::uint64_t I = 0; I != Len; ++I) {
    const std::uint64_t J = digitReverse(I, 4, Digits);
    if (J > I)
      std::swap(Data[I], Data[J]);
  }

  // Twiddles for span L come from the shared ROM with stride Rom.size()/L;
  // stage exponents Q*J*Stride stay below 3/4 * Rom.size(), so the
  // kernels index the raw table directly. The stage loops themselves run
  // through the runtime-dispatched SIMD kernels.
  const FftKernels &Kernels = activeKernels();
  const std::uint64_t RomN = Rom.size();
  for (std::uint64_t M = 1, L = 4; M < Len; M = L, L *= 4)
    Kernels.Radix4Stage(Data, Len, M, Rom.data(), RomN / L, Inverse);
}
