//===- fft/ReferenceDft.h - O(N^2) reference transforms ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct-summation DFTs used as the oracle for every FFT test. Slow by
/// design; never used outside tests and examples' verification paths.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_REFERENCEDFT_H
#define FFT3D_FFT_REFERENCEDFT_H

#include "fft/Complex.h"

#include <vector>

namespace fft3d {

/// Direct N^2 DFT. \p Inverse applies conjugated kernels and the 1/N
/// scale (matching Fft1d::inverse).
std::vector<CplxD> referenceDft(const std::vector<CplxD> &Input,
                                bool Inverse = false);

/// Direct 2D DFT of a RowsxCols matrix stored row-major. O((R*C)^2);
/// keep the inputs tiny.
std::vector<CplxD> referenceDft2d(const std::vector<CplxD> &Input,
                                  std::uint64_t Rows, std::uint64_t Cols,
                                  bool Inverse = false);

/// Maximum absolute element difference between two equal-length vectors.
double maxAbsDiff(const std::vector<CplxD> &A, const std::vector<CplxD> &B);

} // namespace fft3d

#endif // FFT3D_FFT_REFERENCEDFT_H
