//===- fft/PackedSpectrum.cpp - Irredundant half-spectrum packing ---------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/PackedSpectrum.h"

#include "fft/Fft1d.h"
#include "fft/RealFft1d.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

namespace {

template <typename Cplx>
std::vector<Cplx> packBinsImpl(const std::vector<Cplx> &Bins) {
  assert(Bins.size() >= 3 && Bins.size() % 2 == 1 &&
         "expected N/2 + 1 Hermitian bins for even N >= 4");
  const std::uint64_t Half = Bins.size() - 1; // N/2
  std::vector<Cplx> Packed(Half);
  Packed[0] = Cplx(Bins[0].real(), Bins[Half].real());
  for (std::uint64_t K = 1; K != Half; ++K)
    Packed[K] = Bins[K];
  return Packed;
}

template <typename Cplx>
std::vector<Cplx> unpackBinsImpl(const std::vector<Cplx> &Packed) {
  assert(Packed.size() >= 2 && "packed row needs at least DC+Nyquist");
  const std::uint64_t Half = Packed.size(); // N/2
  std::vector<Cplx> Bins(Half + 1);
  Bins[0] = Cplx(Packed[0].real(), 0);
  Bins[Half] = Cplx(Packed[0].imag(), 0);
  for (std::uint64_t K = 1; K != Half; ++K)
    Bins[K] = Packed[K];
  return Bins;
}

} // namespace

std::vector<CplxF> fft3d::packHermitianBins(const std::vector<CplxF> &Bins) {
  return packBinsImpl(Bins);
}

std::vector<CplxD> fft3d::packHermitianBins(const std::vector<CplxD> &Bins) {
  return packBinsImpl(Bins);
}

std::vector<CplxF>
fft3d::unpackHermitianBins(const std::vector<CplxF> &Packed) {
  return unpackBinsImpl(Packed);
}

std::vector<CplxD>
fft3d::unpackHermitianBins(const std::vector<CplxD> &Packed) {
  return unpackBinsImpl(Packed);
}

Matrix fft3d::packedRealRowTransform(const std::vector<double> &Field,
                                     std::uint64_t Rows, std::uint64_t Cols) {
  assert(isPowerOf2(Rows) && isPowerOf2(Cols) && Cols >= 4 &&
         "packed transform needs power-of-two dims, Cols >= 4");
  assert(Field.size() == Rows * Cols && "field does not match dimensions");
  const RealFft1d RowPlan(Cols);
  Matrix Packed(Rows, Cols / 2);
  std::vector<double> Row(Cols);
  for (std::uint64_t R = 0; R != Rows; ++R) {
    for (std::uint64_t C = 0; C != Cols; ++C)
      Row[C] = Field[R * Cols + C];
    const std::vector<CplxD> Folded = packHermitianBins(RowPlan.forward(Row));
    for (std::uint64_t C = 0; C != Cols / 2; ++C)
      Packed.at(R, C) = narrow(Folded[C]);
  }
  return Packed;
}

Matrix fft3d::packedRealForward2d(const std::vector<double> &Field,
                                  std::uint64_t Rows, std::uint64_t Cols) {
  Matrix Packed = packedRealRowTransform(Field, Rows, Cols);
  // Column phase: plain storage-precision complex FFTs down every packed
  // column, exactly the kernels the simulated pipeline dispatches - the
  // symmetry trick imposes no special casing here.
  const Fft1d ColPlan(Rows);
  std::vector<CplxF> Col;
  for (std::uint64_t C = 0; C != Cols / 2; ++C) {
    Packed.copyCol(C, Col);
    ColPlan.forward(Col);
    Packed.setCol(C, Col);
  }
  return Packed;
}

HalfSpectrum fft3d::unpackSpectrum(const Matrix &Packed, std::uint64_t Cols) {
  assert(Packed.cols() == Cols / 2 && Cols >= 4 &&
         "packed matrix width must be Cols/2");
  const std::uint64_t Rows = Packed.rows();
  HalfSpectrum Spec;
  Spec.Rows = Rows;
  Spec.Bins = Cols / 2 + 1;
  Spec.Data.assign(Rows * Spec.Bins, CplxD(0, 0));

  // Interior columns are ordinary complex spectral columns.
  for (std::uint64_t R = 0; R != Rows; ++R)
    for (std::uint64_t C = 1; C != Cols / 2; ++C)
      Spec.at(R, C) = widen(Packed.at(R, C));

  // Packed column 0 holds Z = F(dc + i*nyq); the Hermitian split
  // recovers both purely-real-input spectral columns:
  //   DC[k] = (Z[k] + conj(Z[(Rows-k) % Rows])) / 2
  //   NY[k] = (Z[k] - conj(Z[(Rows-k) % Rows])) / (2i)
  for (std::uint64_t K = 0; K != Rows; ++K) {
    const CplxD Zk = widen(Packed.at(K, 0));
    const CplxD Zr = widen(Packed.at((Rows - K) % Rows, 0));
    const CplxD ZrC(Zr.real(), -Zr.imag());
    Spec.at(K, 0) = (Zk + ZrC) * 0.5;
    const CplxD D = Zk - ZrC;
    Spec.at(K, Cols / 2) = CplxD(D.imag() * 0.5, -D.real() * 0.5);
  }
  return Spec;
}

std::vector<double> fft3d::packedRealInverse2d(const Matrix &Packed,
                                               std::uint64_t Cols) {
  assert(Packed.cols() == Cols / 2 && Cols >= 4 &&
         "packed matrix width must be Cols/2");
  const std::uint64_t Rows = Packed.rows();
  Matrix RowSpectra = Packed;
  const Fft1d ColPlan(Rows);
  std::vector<CplxF> Col;
  for (std::uint64_t C = 0; C != Cols / 2; ++C) {
    RowSpectra.copyCol(C, Col);
    ColPlan.inverse(Col);
    RowSpectra.setCol(C, Col);
  }

  const RealFft1d RowPlan(Cols);
  std::vector<double> Field(Rows * Cols);
  std::vector<CplxD> PackedRow(Cols / 2);
  for (std::uint64_t R = 0; R != Rows; ++R) {
    for (std::uint64_t C = 0; C != Cols / 2; ++C)
      PackedRow[C] = widen(RowSpectra.at(R, C));
    const std::vector<double> Row =
        RowPlan.inverse(unpackHermitianBins(PackedRow));
    for (std::uint64_t C = 0; C != Cols; ++C)
      Field[R * Cols + C] = Row[C];
  }
  return Field;
}
