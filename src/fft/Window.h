//===- fft/Window.h - Spectral window functions -----------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard tapering windows for spectral analysis. Streaming transform
/// kernels of the paper's kind are invariably preceded by a window
/// multiply in real deployments (the radar example uses one to keep
/// strong targets from leaking over weak ones); the window is one more
/// ROM + complex multiplier in the TFC style of Fig. 2c.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_WINDOW_H
#define FFT3D_FFT_WINDOW_H

#include "fft/Complex.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Window families.
enum class WindowKind {
  Rectangular,
  Hann,
  Hamming,
  Blackman,
};

const char *windowKindName(WindowKind Kind);

/// Precomputed N-point window.
class Window {
public:
  Window(WindowKind Kind, std::uint64_t N);

  WindowKind kind() const { return Kind; }
  std::uint64_t size() const { return Coefficients.size(); }

  double coefficient(std::uint64_t I) const { return Coefficients[I]; }
  const std::vector<double> &coefficients() const { return Coefficients; }

  /// Coherent gain: mean coefficient (amplitude scaling of a tone).
  double coherentGain() const;

  /// Equivalent noise bandwidth in bins: N * sum(w^2) / sum(w)^2.
  double equivalentNoiseBandwidth() const;

  /// Applies the window in place to a real signal.
  void apply(std::vector<double> &Signal) const;

  /// Applies the window in place to a complex signal.
  void apply(std::vector<CplxD> &Signal) const;
  void apply(std::vector<CplxF> &Signal) const;

private:
  WindowKind Kind;
  std::vector<double> Coefficients;
};

} // namespace fft3d

#endif // FFT3D_FFT_WINDOW_H
