//===- fft/Twiddle.h - Twiddle factor generation and ROMs -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Twiddle factors W_N^k = exp(-2*pi*i*k/N) and the lookup-table storage
/// model of the paper's TFC generation logic (Fig. 2c): "several lookup
/// tables (functional ROMs) for storing twiddle factor coefficients",
/// sized per butterfly stage.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_TWIDDLE_H
#define FFT3D_FFT_TWIDDLE_H

#include "fft/Complex.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Computes W_N^K in double precision.
CplxD twiddle(std::uint64_t N, std::uint64_t K);

/// Precomputed table of the N-th roots of unity, exponent 0..N-1, shared
/// by every stage of an N-point transform. Lookups index the full table
/// by (stage-local exponent * stride), so one ROM image serves all stages.
class TwiddleRom {
public:
  explicit TwiddleRom(std::uint64_t N);

  std::uint64_t size() const { return Roots.size(); }

  /// W_N^K; \p K is reduced mod N.
  CplxD root(std::uint64_t K) const { return Roots[K % Roots.size()]; }

  /// Conjugate root (for inverse transforms).
  CplxD conjRoot(std::uint64_t K) const { return std::conj(root(K)); }

  /// Raw table for kernels whose exponents are proven < size() (stage
  /// exponents Q*J*stride never wrap), skipping root()'s reduction.
  const CplxD *data() const { return Roots.data(); }

  /// ROM footprint in bytes if realized at the stored element width.
  std::uint64_t romBytes() const { return Roots.size() * ElementBytes; }

private:
  std::vector<CplxD> Roots;
};

} // namespace fft3d

#endif // FFT3D_FFT_TWIDDLE_H
