//===- fft/Matrix.cpp - Complex matrix container ---------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace fft3d;

Matrix::Matrix(std::uint64_t Rows, std::uint64_t Cols)
    : NumRows(Rows), NumCols(Cols), Data(Rows * Cols) {
  assert(Rows != 0 && Cols != 0 && "degenerate matrix");
}

CplxF &Matrix::at(std::uint64_t Row, std::uint64_t Col) {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return Data[Row * NumCols + Col];
}

CplxF Matrix::at(std::uint64_t Row, std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return Data[Row * NumCols + Col];
}

void Matrix::copyRow(std::uint64_t Row, std::vector<CplxF> &Out) const {
  assert(Row < NumRows && "row out of range");
  Out.assign(Data.begin() + static_cast<std::ptrdiff_t>(Row * NumCols),
             Data.begin() + static_cast<std::ptrdiff_t>((Row + 1) * NumCols));
}

void Matrix::copyCol(std::uint64_t Col, std::vector<CplxF> &Out) const {
  assert(Col < NumCols && "column out of range");
  Out.resize(NumRows);
  for (std::uint64_t R = 0; R != NumRows; ++R)
    Out[R] = Data[R * NumCols + Col];
}

void Matrix::setRow(std::uint64_t Row, const std::vector<CplxF> &In) {
  assert(Row < NumRows && In.size() == NumCols && "row shape mismatch");
  std::copy(In.begin(), In.end(),
            Data.begin() + static_cast<std::ptrdiff_t>(Row * NumCols));
}

void Matrix::setCol(std::uint64_t Col, const std::vector<CplxF> &In) {
  assert(Col < NumCols && In.size() == NumRows && "column shape mismatch");
  for (std::uint64_t R = 0; R != NumRows; ++R)
    Data[R * NumCols + Col] = In[R];
}

void Matrix::transposeSquare() {
  assert(NumRows == NumCols && "in-place transpose requires a square matrix");
  // Tiled swap walk: a 32 x 32 tile of 8-byte elements is 8 KiB, so one
  // source tile plus its mirror stay resident in L1 while every line of
  // the strided side is touched 32 times instead of once per element.
  constexpr std::uint64_t Tile = 32;
  const std::uint64_t N = NumRows;
  for (std::uint64_t RB = 0; RB < N; RB += Tile) {
    const std::uint64_t REnd = std::min(RB + Tile, N);
    for (std::uint64_t R = RB; R != REnd; ++R)
      for (std::uint64_t C = R + 1; C != REnd; ++C)
        std::swap(Data[R * N + C], Data[C * N + R]);
    for (std::uint64_t CB = RB + Tile; CB < N; CB += Tile) {
      const std::uint64_t CEnd = std::min(CB + Tile, N);
      for (std::uint64_t R = RB; R != REnd; ++R)
        for (std::uint64_t C = CB; C != CEnd; ++C)
          std::swap(Data[R * N + C], Data[C * N + R]);
    }
  }
}

std::vector<CplxD> Matrix::widened() const {
  std::vector<CplxD> Wide(Data.size());
  for (std::size_t I = 0; I != Data.size(); ++I)
    Wide[I] = widen(Data[I]);
  return Wide;
}

double Matrix::maxAbsDiff(const Matrix &Other) const {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "shape mismatch");
  double Max = 0.0;
  for (std::size_t I = 0; I != Data.size(); ++I)
    Max = std::max(Max, static_cast<double>(std::abs(Data[I] - Other.Data[I])));
  return Max;
}
