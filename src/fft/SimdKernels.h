//===- fft/SimdKernels.h - Runtime-dispatched FFT kernels -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime CPU dispatch for the numeric FFT's inner loops: the radix-4
/// butterfly stage and the radix-2 combine. The reference transform in
/// Fft1d stays the specification; these kernels are drop-in replacements
/// for its hot loops, selected once per process from the best instruction
/// set the CPU offers (SSE2 / AVX2 on x86-64, NEON on AArch64, plain
/// scalar everywhere else).
///
/// Bit-compatibility contract: every vector kernel performs the same IEEE
/// operations in the same order as the scalar loop - complex multiplies
/// use the naive (mul, mul, sub / mul, mul, add) form std::complex
/// evaluates for finite values, negation and conjugation are sign flips,
/// and no FMA contraction is used - so all levels produce bit-identical
/// results on finite data. Tests assert 0-ulp agreement across levels.
///
/// The active level can be forced (for testing or reproducibility) with
/// setSimdLevel() or the FFT3D_SIMD environment variable ("scalar",
/// "sse2", "avx2", "neon"); requests beyond what the CPU supports fall
/// back to the best supported level at or below the request.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_SIMDKERNELS_H
#define FFT3D_FFT_SIMDKERNELS_H

#include "fft/Complex.h"

#include <cstdint>

namespace fft3d {

/// Instruction-set tiers, ordered by preference within an architecture.
enum class SimdLevel {
  Scalar = 0,
  Sse2 = 1,
  Avx2 = 2,
  Neon = 3,
};

const char *simdLevelName(SimdLevel Level);

/// True when this build + CPU can execute \p Level.
bool simdLevelSupported(SimdLevel Level);

/// Best level the running CPU supports.
SimdLevel detectSimdLevel();

/// The level the FFT currently dispatches to. Defaults to
/// detectSimdLevel(), overridable by FFT3D_SIMD at first use.
SimdLevel activeSimdLevel();

/// Forces dispatch to the best supported level at or below \p Level
/// (always at least Scalar). Returns the level actually selected.
SimdLevel setSimdLevel(SimdLevel Level);

/// The FFT inner loops, one function pointer per hot loop.
struct FftKernels {
  /// One radix-4 DIT stage over Data[0..Len): butterflies of span
  /// L = 4 * M, twiddles W^(Q*J*Stride) read directly from \p Rom
  /// (callers guarantee Q*J*Stride < ROM size).
  void (*Radix4Stage)(CplxD *Data, std::uint64_t Len, std::uint64_t M,
                      const CplxD *Rom, std::uint64_t Stride, bool Inverse);
  /// Final radix-2 combine of an odd-log2 transform: Data[J] and
  /// Data[J + Half] from pre-transformed Even/Odd halves, twiddles
  /// Rom[J] (conjugated when Inverse).
  void (*Radix2Combine)(CplxD *Data, const CplxD *Even, const CplxD *Odd,
                        std::uint64_t Half, const CplxD *Rom, bool Inverse);
  /// Pointwise spectral product Acc[I] *= Other[I] for I in [0, Len) -
  /// the convolution theorem's multiply stage. Same naive complex-product
  /// order as the butterfly kernels, so all levels are bit-identical.
  void (*PointwiseMul)(CplxD *Acc, const CplxD *Other, std::uint64_t Len);
};

/// Kernels for the active level.
const FftKernels &activeKernels();

/// Kernels for a specific (supported) level; used by tests and the
/// scalar-vs-SIMD microbenchmarks. Falls back like setSimdLevel().
const FftKernels &kernelsFor(SimdLevel Level);

} // namespace fft3d

#endif // FFT3D_FFT_SIMDKERNELS_H
