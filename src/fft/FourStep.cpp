//===- fft/FourStep.cpp - Four-step (Bailey) FFT ---------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/FourStep.h"

#include "fft/Fft1d.h"
#include "fft/Twiddle.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

void fft3d::fftFourStep(std::vector<CplxD> &Data, std::uint64_t N1,
                        std::uint64_t N2, bool Inverse) {
  const std::uint64_t N = N1 * N2;
  if (Data.size() != N)
    reportFatalError("four-step input length must equal N1 * N2");
  if (!isPowerOf2(N1) || !isPowerOf2(N2) || N1 < 2 || N2 < 2)
    reportFatalError("four-step factors must be powers of two >= 2");

  // View the input as an N1 x N2 matrix A[i1][i2] = x[i1 * N2 + i2].
  // Decimation: x[n], n = i1 * N2 + i2; X[k], k = k2 * N1 + k1.
  const Fft1d ColPlan(N1);
  const Fft1d RowPlan(N2);
  const TwiddleRom Rom(N);

  // Step 1: N1-point FFTs down the columns (stride N2 in this view; an
  // implementation on the modelled hardware would lay the matrix out so
  // this streams - the whole point of the algorithm).
  std::vector<CplxD> Column(N1);
  for (std::uint64_t I2 = 0; I2 != N2; ++I2) {
    for (std::uint64_t I1 = 0; I1 != N1; ++I1)
      Column[I1] = Data[I1 * N2 + I2];
    if (Inverse)
      ColPlan.inverse(Column);
    else
      ColPlan.forward(Column);
    for (std::uint64_t K1 = 0; K1 != N1; ++K1)
      Data[K1 * N2 + I2] = Column[K1];
  }

  // Step 2: twiddle multiply by W_N^(k1 * i2).
  for (std::uint64_t K1 = 0; K1 != N1; ++K1)
    for (std::uint64_t I2 = 0; I2 != N2; ++I2) {
      const CplxD W = Inverse ? Rom.conjRoot(K1 * I2) : Rom.root(K1 * I2);
      Data[K1 * N2 + I2] *= W;
    }

  // Step 3: N2-point FFTs along the rows (unit stride).
  std::vector<CplxD> Row(N2);
  for (std::uint64_t K1 = 0; K1 != N1; ++K1) {
    for (std::uint64_t I2 = 0; I2 != N2; ++I2)
      Row[I2] = Data[K1 * N2 + I2];
    if (Inverse)
      RowPlan.inverse(Row);
    else
      RowPlan.forward(Row);
    for (std::uint64_t K2 = 0; K2 != N2; ++K2)
      Data[K1 * N2 + K2] = Row[K2];
  }

  // Step 4: transpose into frequency order X[k2 * N1 + k1].
  std::vector<CplxD> Out(N);
  for (std::uint64_t K1 = 0; K1 != N1; ++K1)
    for (std::uint64_t K2 = 0; K2 != N2; ++K2)
      Out[K2 * N1 + K1] = Data[K1 * N2 + K2];

  if (Inverse) {
    // Fft1d::inverse scaled each sub-transform by 1/N1 and 1/N2, which
    // multiplies to the required 1/N. Nothing further to do.
  }
  Data = std::move(Out);
}

void fft3d::fftFourStep(std::vector<CplxD> &Data, bool Inverse) {
  const std::uint64_t N = Data.size();
  if (!isPowerOf2(N) || N < 4)
    reportFatalError("four-step needs a power-of-two length >= 4");
  const unsigned Log = log2Exact(N);
  const std::uint64_t N1 = 1ull << (Log / 2);
  fftFourStep(Data, N1, N / N1, Inverse);
}
