//===- fft/Fft1d.h - 1D FFT engine ------------------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numeric 1D FFT underlying the kernel model: an iterative radix-4
/// decimation-in-time transform (the algorithm the paper's radix-4
/// hardware realizes), extended to all powers of two with a single
/// radix-2 split when log2(N) is odd. Storage elements are 64-bit
/// complex (CplxF); arithmetic runs in double precision internally, as
/// the reference against which the fixed hardware would be validated.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_FFT1D_H
#define FFT3D_FFT_FFT1D_H

#include "fft/Complex.h"
#include "fft/Twiddle.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Planned N-point transform with precomputed twiddle ROM.
class Fft1d {
public:
  /// \p N must be a power of two >= 2.
  explicit Fft1d(std::uint64_t N);

  std::uint64_t size() const { return N; }

  /// Number of radix-4 butterfly stages (per half when a radix-2 split is
  /// needed).
  unsigned numRadix4Stages() const { return Radix4Stages; }

  /// True when log2(N) is odd and the transform adds one radix-2 stage.
  bool hasRadix2Stage() const { return HasRadix2; }

  /// Forward transform, storage precision. \p Data.size() == N.
  void forward(std::vector<CplxF> &Data) const;

  /// Inverse transform (scaled by 1/N), storage precision.
  void inverse(std::vector<CplxF> &Data) const;

  /// Forward transform in double precision (reference-quality path).
  void forward(std::vector<CplxD> &Data) const;

  /// Inverse transform in double precision (scaled by 1/N).
  void inverse(std::vector<CplxD> &Data) const;

  const TwiddleRom &rom() const { return Rom; }

private:
  void transform(std::vector<CplxD> &Data, bool Inverse) const;

  /// Iterative radix-4 DIT over Data[0..Len), Len a power of 4.
  void radix4InPlace(CplxD *Data, std::uint64_t Len, bool Inverse) const;

  std::uint64_t N;
  unsigned Radix4Stages;
  bool HasRadix2;
  TwiddleRom Rom;
};

} // namespace fft3d

#endif // FFT3D_FFT_FFT1D_H
