//===- fft/RealFft1d.cpp - Real-input FFT (r2c / c2r) ----------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/RealFft1d.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

/// Validates the size before the half-size engine is constructed.
static std::uint64_t checkedHalfSize(std::uint64_t N) {
  if (!isPowerOf2(N) || N < 4)
    reportFatalError("real FFT requires a power-of-two size >= 4");
  return N / 2;
}

RealFft1d::RealFft1d(std::uint64_t N)
    : N(N), Half(checkedHalfSize(N)), Rom(N) {}

std::vector<CplxD> RealFft1d::forward(const std::vector<double> &Input) const {
  assert(Input.size() == N && "input length must match the plan");
  const std::uint64_t M = N / 2;

  // Pack: z[k] = x[2k] + i*x[2k+1].
  std::vector<CplxD> Z(M);
  for (std::uint64_t K = 0; K != M; ++K)
    Z[K] = CplxD(Input[2 * K], Input[2 * K + 1]);
  Half.forward(Z);

  // Unpack: with A = FFT(even), B = FFT(odd),
  //   A[k] = (Z[k] + conj(Z[M-k])) / 2
  //   B[k] = -i * (Z[k] - conj(Z[M-k])) / 2
  //   X[k] = A[k] + W_N^k * B[k],  k = 0..M (Z indices mod M).
  std::vector<CplxD> Spectrum(M + 1);
  for (std::uint64_t K = 0; K <= M; ++K) {
    const CplxD Zk = Z[K % M];
    const CplxD Zc = std::conj(Z[(M - K) % M]);
    const CplxD A = (Zk + Zc) * 0.5;
    const CplxD B = (Zk - Zc) * CplxD(0.0, -0.5);
    Spectrum[K] = A + Rom.root(K) * B;
  }
  return Spectrum;
}

std::vector<double>
RealFft1d::inverse(const std::vector<CplxD> &Spectrum) const {
  assert(Spectrum.size() == bins() && "spectrum must have N/2+1 bins");
  const std::uint64_t M = N / 2;

  // Re-pack: A[k] = (X[k] + conj(X[M-k])) / 2,
  //          B[k] = W_N^{-k} * (X[k] - conj(X[M-k])) / 2,
  //          Z[k] = A[k] + i * B[k].
  std::vector<CplxD> Z(M);
  for (std::uint64_t K = 0; K != M; ++K) {
    const CplxD Xk = Spectrum[K];
    const CplxD Xc = std::conj(Spectrum[M - K]);
    const CplxD A = (Xk + Xc) * 0.5;
    const CplxD B = Rom.conjRoot(K) * (Xk - Xc) * 0.5;
    Z[K] = A + CplxD(0.0, 1.0) * B;
  }
  Half.inverse(Z);

  std::vector<double> Output(N);
  for (std::uint64_t K = 0; K != M; ++K) {
    Output[2 * K] = Z[K].real();
    Output[2 * K + 1] = Z[K].imag();
  }
  return Output;
}
