//===- fft/Complex.h - Complex element types --------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Element types for the FFT library. The paper's data element is a
/// single-precision complex number: real + imaginary part, 64 bits total
/// ("each data element is a complex number ... hence the data width is 64
/// bit"). Reference computations (twiddle generation, the O(N^2) DFT)
/// run in double precision.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_COMPLEX_H
#define FFT3D_FFT_COMPLEX_H

#include <complex>
#include <cstdint>

namespace fft3d {

/// The 64-bit storage element streamed through the FFT kernel and memory.
using CplxF = std::complex<float>;

/// Double-precision complex used for references and twiddle generation.
using CplxD = std::complex<double>;

/// Bytes per stored element (matches the paper's 64-bit data width).
constexpr unsigned ElementBytes = sizeof(CplxF);
static_assert(ElementBytes == 8, "paper's element is 64 bits");

/// Widens a storage element for double-precision arithmetic.
inline CplxD widen(CplxF Value) {
  return CplxD(Value.real(), Value.imag());
}

/// Narrows a double-precision value to the storage element.
inline CplxF narrow(CplxD Value) {
  return CplxF(static_cast<float>(Value.real()),
               static_cast<float>(Value.imag()));
}

} // namespace fft3d

#endif // FFT3D_FFT_COMPLEX_H
