//===- fft/Fft2d.cpp - Row-column 2D FFT ------------------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Fft2d.h"

#include <cassert>

using namespace fft3d;

Fft2d::Fft2d(std::uint64_t Rows, std::uint64_t Cols)
    : NumRows(Rows), NumCols(Cols), RowPlan(Cols), ColPlan(Rows) {}

void Fft2d::forward(Matrix &M) const {
  rowPhase(M, /*Inverse=*/false);
  colPhase(M, /*Inverse=*/false);
}

void Fft2d::inverse(Matrix &M) const {
  rowPhase(M, /*Inverse=*/true);
  colPhase(M, /*Inverse=*/true);
}

void Fft2d::rowPhase(Matrix &M, bool Inverse) const {
  assert(M.rows() == NumRows && M.cols() == NumCols && "shape mismatch");
  std::vector<CplxF> Line;
  for (std::uint64_t R = 0; R != NumRows; ++R) {
    M.copyRow(R, Line);
    if (Inverse)
      RowPlan.inverse(Line);
    else
      RowPlan.forward(Line);
    M.setRow(R, Line);
  }
}

void Fft2d::colPhase(Matrix &M, bool Inverse) const {
  assert(M.rows() == NumRows && M.cols() == NumCols && "shape mismatch");
  if (NumRows == NumCols) {
    // Square case: a blocked transpose turns every strided column walk
    // into a sequential row scan (the host-side analogue of the paper's
    // layout trick), then a second transpose restores orientation. The
    // transforms see exactly the same per-column data, so results are
    // bit-identical to the strided walk.
    M.transposeSquare();
    std::vector<CplxF> Line;
    for (std::uint64_t C = 0; C != NumCols; ++C) {
      M.copyRow(C, Line);
      if (Inverse)
        ColPlan.inverse(Line);
      else
        ColPlan.forward(Line);
      M.setRow(C, Line);
    }
    M.transposeSquare();
    return;
  }
  std::vector<CplxF> Line;
  for (std::uint64_t C = 0; C != NumCols; ++C) {
    M.copyCol(C, Line);
    if (Inverse)
      ColPlan.inverse(Line);
    else
      ColPlan.forward(Line);
    M.setCol(C, Line);
  }
}
