//===- fft/Bluestein.cpp - Arbitrary-length DFT (chirp-z) -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Bluestein.h"

#include "fft/Fft1d.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <cassert>
#include <cmath>
#include <numbers>

using namespace fft3d;

BluesteinFft::BluesteinFft(std::uint64_t N) : N(N) {
  if (N == 0)
    reportFatalError("Bluestein transform needs N >= 1");
  M = std::uint64_t(1) << log2Ceil(2 * N - 1);
  if (M < 2)
    M = 2;
  ConvPlan = std::make_unique<Fft1d>(M);

  // Chirp with the exponent reduced mod 2N to keep the angle accurate
  // for large n (n^2 overflows double precision of the phase otherwise).
  Chirp.resize(N);
  for (std::uint64_t I = 0; I != N; ++I) {
    const std::uint64_t Sq = (I * I) % (2 * N);
    const double Angle =
        -std::numbers::pi * static_cast<double>(Sq) / static_cast<double>(N);
    Chirp[I] = CplxD(std::cos(Angle), std::sin(Angle));
  }

  // Convolution kernel b[n] = conj(c(|n|)) wrapped circularly into M.
  KernelSpectrum.assign(M, CplxD(0, 0));
  KernelSpectrum[0] = std::conj(Chirp[0]);
  for (std::uint64_t I = 1; I != N; ++I) {
    KernelSpectrum[I] = std::conj(Chirp[I]);
    KernelSpectrum[M - I] = std::conj(Chirp[I]);
  }
  ConvPlan->forward(KernelSpectrum);
}

BluesteinFft::~BluesteinFft() = default;

void BluesteinFft::transform(std::vector<CplxD> &Data, bool Inverse) const {
  assert(Data.size() == N && "input length must match the plan");
  // Inverse DFT via conjugation: IDFT(x) = conj(DFT(conj(x))) / N.
  if (Inverse)
    for (CplxD &V : Data)
      V = std::conj(V);

  std::vector<CplxD> A(M, CplxD(0, 0));
  for (std::uint64_t I = 0; I != N; ++I)
    A[I] = Data[I] * Chirp[I];
  ConvPlan->forward(A);
  for (std::uint64_t I = 0; I != M; ++I)
    A[I] *= KernelSpectrum[I];
  ConvPlan->inverse(A);
  for (std::uint64_t K = 0; K != N; ++K)
    Data[K] = Chirp[K] * A[K];

  if (Inverse) {
    const double Scale = 1.0 / static_cast<double>(N);
    for (CplxD &V : Data)
      V = std::conj(V) * Scale;
  }
}

void BluesteinFft::forward(std::vector<CplxD> &Data) const {
  transform(Data, /*Inverse=*/false);
}

void BluesteinFft::inverse(std::vector<CplxD> &Data) const {
  transform(Data, /*Inverse=*/true);
}
