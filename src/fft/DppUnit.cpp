//===- fft/DppUnit.cpp - Data path permutation unit -------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/DppUnit.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

DppUnit::DppUnit(std::uint64_t FftSize, unsigned Radix, unsigned StageIndex,
                 unsigned Lanes)
    : FftSize(FftSize), Radix(Radix), StageIndex(StageIndex), Lanes(Lanes) {
  if (!isPowerOf(FftSize, Radix))
    reportFatalError("DPP unit requires FFT size a power of the radix");
  assert(StageIndex < digitCount(FftSize, Radix) &&
         "stage index beyond the last butterfly stage");
  assert(Lanes != 0 && "zero-lane stream");
}

std::uint64_t DppUnit::bufferWords() const {
  // DIT stage s pairs operands M = R^s apart, so the delay lines in front
  // of it hold (R-1) * M words. Summed over all stages that is N - 1,
  // the classic single-path delay-feedback memory bound.
  std::uint64_t M = 1;
  for (unsigned I = 0; I != StageIndex; ++I)
    M *= Radix;
  return (Radix - 1) * M;
}

unsigned DppUnit::muxCount() const {
  const unsigned Groups = Lanes >= Radix ? Lanes / Radix : 1;
  return Groups * 2 * Radix;
}

std::uint64_t DppUnit::latencyCycles() const {
  return ceilDiv(bufferWords(), Lanes);
}

Permutation DppUnit::framePermutation() const {
  // Between stage s and s+1 the operand grouping widens from R^(s+1) to
  // R^(s+2); the reordering is a stride-R permutation applied within each
  // R^(s+2)-element section of the frame.
  const std::uint64_t Section =
      std::min<std::uint64_t>(FftSize, [&] {
        std::uint64_t S = 1;
        for (unsigned I = 0; I != StageIndex + 2; ++I)
          S *= Radix;
        return S;
      }());
  const Permutation Local = Permutation::stride(Section, Radix);
  std::vector<std::uint64_t> Map(FftSize);
  for (std::uint64_t Base = 0; Base < FftSize; Base += Section)
    for (std::uint64_t I = 0; I != Section; ++I)
      Map[Base + I] = Base + Local.sourceOf(I);
  return Permutation(std::move(Map));
}
