//===- fft/Twiddle.cpp - Twiddle factor generation and ROMs ---------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Twiddle.h"

#include "support/MathUtils.h"

#include <cassert>
#include <cmath>
#include <numbers>

using namespace fft3d;

CplxD fft3d::twiddle(std::uint64_t N, std::uint64_t K) {
  assert(N != 0 && "twiddle base must be non-zero");
  const double Angle =
      -2.0 * std::numbers::pi * static_cast<double>(K % N) /
      static_cast<double>(N);
  return CplxD(std::cos(Angle), std::sin(Angle));
}

TwiddleRom::TwiddleRom(std::uint64_t N) {
  assert(isPowerOf2(N) && "transform size must be a power of two");
  Roots.reserve(N);
  for (std::uint64_t K = 0; K != N; ++K)
    Roots.push_back(twiddle(N, K));
}
