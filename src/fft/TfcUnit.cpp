//===- fft/TfcUnit.cpp - Twiddle factor computation unit --------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/TfcUnit.h"

#include "fft/Twiddle.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

TfcUnit::TfcUnit(std::uint64_t FftSize, unsigned Radix, unsigned StageIndex,
                 unsigned Lanes)
    : FftSize(FftSize), Radix(Radix), StageIndex(StageIndex), Lanes(Lanes) {
  if (!isPowerOf(FftSize, Radix))
    reportFatalError("TFC unit requires FFT size a power of the radix");
  assert(StageIndex < digitCount(FftSize, Radix) &&
         "stage index beyond the last butterfly stage");

  // DIT stage s combines sub-transforms of span R^s into span L = R^(s+1);
  // operand q is twiddled by W_L^(q*j), j in [0, R^s).
  TablePeriod = 1;
  for (unsigned I = 0; I != StageIndex; ++I)
    TablePeriod *= Radix;
  const std::uint64_t L = TablePeriod * Radix;

  Tables.resize(Radix - 1);
  for (unsigned Q = 1; Q != Radix; ++Q) {
    Tables[Q - 1].reserve(TablePeriod);
    for (std::uint64_t J = 0; J != TablePeriod; ++J)
      Tables[Q - 1].push_back(twiddle(L, Q * J));
  }
}

CplxD TfcUnit::factor(unsigned Q, std::uint64_t J, bool Conjugate) const {
  assert(Q >= 1 && Q < Radix && "operand index out of range");
  const CplxD W = Tables[Q - 1][J % TablePeriod];
  return Conjugate ? std::conj(W) : W;
}

unsigned TfcUnit::complexMultipliers() const {
  const unsigned Groups = Lanes >= Radix ? Lanes / Radix : 1;
  // Stage 0 twiddles are all 1 in a DIT kernel; the hardware still
  // instantiates the data path but a real design elides the multipliers.
  if (StageIndex == 0)
    return 0;
  return Groups * (Radix - 1);
}
