//===- fft/FourStep.h - Four-step (Bailey) FFT ------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four-step FFT: an N = N1 x N2 point transform computed as column
/// FFTs, a twiddle multiply, row FFTs, and a transpose. It is the
/// classic way to make a *1D* transform memory-friendly - every pass
/// streams a matrix - and therefore the natural alternative to the
/// paper's approach: where the dynamic layout fixes the row-column 2D
/// algorithm's strided phase in the memory system, four-step restructures
/// the algorithm itself (at the cost of the extra twiddle pass and an
/// explicit transpose). Having both in one library lets the benches
/// compare the two philosophies on equal footing.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_FOURSTEP_H
#define FFT3D_FFT_FOURSTEP_H

#include "fft/Complex.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// In-place N1*N2-point DFT of \p Data via the four-step algorithm.
/// \p Data is indexed naturally (time order in, frequency order out),
/// exactly matching Fft1d's forward/inverse semantics (the inverse
/// scales by 1/N). N1 and N2 must be powers of two >= 2.
void fftFourStep(std::vector<CplxD> &Data, std::uint64_t N1,
                 std::uint64_t N2, bool Inverse = false);

/// Convenience wrapper choosing a near-square split for \p Data.size().
void fftFourStep(std::vector<CplxD> &Data, bool Inverse = false);

} // namespace fft3d

#endif // FFT3D_FFT_FOURSTEP_H
