//===- fft/RealFft2d.cpp - 2D real-input FFT --------------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/RealFft2d.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

RealFft2d::RealFft2d(std::uint64_t Rows, std::uint64_t Cols)
    : NumRows(Rows), NumCols(Cols), RowPlan(Cols), ColPlan(Rows) {
  if (!isPowerOf2(Rows) || Rows < 2)
    reportFatalError("real 2D FFT requires power-of-two row count >= 2");
}

HalfSpectrum RealFft2d::forward(const std::vector<double> &Field) const {
  assert(Field.size() == NumRows * NumCols && "field shape mismatch");
  HalfSpectrum Spectrum;
  Spectrum.Rows = NumRows;
  Spectrum.Bins = bins();
  Spectrum.Data.resize(NumRows * Spectrum.Bins);

  // Phase 1: r2c along each row.
  std::vector<double> Row(NumCols);
  for (std::uint64_t R = 0; R != NumRows; ++R) {
    std::copy(Field.begin() + static_cast<std::ptrdiff_t>(R * NumCols),
              Field.begin() + static_cast<std::ptrdiff_t>((R + 1) * NumCols),
              Row.begin());
    const std::vector<CplxD> Bins = RowPlan.forward(Row);
    std::copy(Bins.begin(), Bins.end(),
              Spectrum.Data.begin() +
                  static_cast<std::ptrdiff_t>(R * Spectrum.Bins));
  }

  // Phase 2: complex transform down each of the Cols/2 + 1 bin columns.
  std::vector<CplxD> Column(NumRows);
  for (std::uint64_t B = 0; B != Spectrum.Bins; ++B) {
    for (std::uint64_t R = 0; R != NumRows; ++R)
      Column[R] = Spectrum.at(R, B);
    ColPlan.forward(Column);
    for (std::uint64_t R = 0; R != NumRows; ++R)
      Spectrum.at(R, B) = Column[R];
  }
  return Spectrum;
}

std::vector<double> RealFft2d::inverse(const HalfSpectrum &Spectrum) const {
  assert(Spectrum.Rows == NumRows && Spectrum.Bins == bins() &&
         "spectrum shape mismatch");
  HalfSpectrum Mid = Spectrum;

  // Undo phase 2.
  std::vector<CplxD> Column(NumRows);
  for (std::uint64_t B = 0; B != Mid.Bins; ++B) {
    for (std::uint64_t R = 0; R != NumRows; ++R)
      Column[R] = Mid.at(R, B);
    ColPlan.inverse(Column);
    for (std::uint64_t R = 0; R != NumRows; ++R)
      Mid.at(R, B) = Column[R];
  }

  // Undo phase 1 row by row.
  std::vector<double> Field(NumRows * NumCols);
  std::vector<CplxD> Bins(bins());
  for (std::uint64_t R = 0; R != NumRows; ++R) {
    for (std::uint64_t B = 0; B != bins(); ++B)
      Bins[B] = Mid.at(R, B);
    const std::vector<double> Row = RowPlan.inverse(Bins);
    std::copy(Row.begin(), Row.end(),
              Field.begin() + static_cast<std::ptrdiff_t>(R * NumCols));
  }
  return Field;
}
