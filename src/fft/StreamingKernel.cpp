//===- fft/StreamingKernel.cpp - Streaming FFT kernel model ----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/StreamingKernel.h"

#include "fft/RadixBlock.h"
#include "support/MathUtils.h"

#include <cassert>
#include <cmath>

using namespace fft3d;

const char *fft3d::kernelRadixName(KernelRadix Radix) {
  switch (Radix) {
  case KernelRadix::Radix4:
    return "radix-4";
  case KernelRadix::Radix2:
    return "radix-2";
  }
  return "unknown";
}

StreamingKernel::StreamingKernel(std::uint64_t FftSize, unsigned Lanes,
                                 double ClockMHz, KernelRadix Radix)
    : Plan(FftSize), Lanes(Lanes),
      ClockMHz(ClockMHz > 0.0 ? ClockMHz : achievableClockMHz(FftSize)),
      Radix(Radix) {
  assert(Lanes != 0 && isPowerOf2(Lanes) && "lanes must be a power of two");
}

unsigned StreamingKernel::numStages() const {
  if (Radix == KernelRadix::Radix2)
    return log2Exact(fftSize());
  return Plan.numRadix4Stages() + (Plan.hasRadix2Stage() ? 1 : 0);
}

double StreamingKernel::streamGBps() const {
  // Bytes per cycle * cycles per second.
  return static_cast<double>(Lanes) * ElementBytes * ClockMHz * 1e6 / 1e9;
}

std::uint64_t StreamingKernel::pipelineFillCycles() const {
  const std::uint64_t N = fftSize();
  if (Radix == KernelRadix::Radix2) {
    // One DPP per stage ((2-1)*2^s words) plus 4 pipeline registers each.
    std::uint64_t Cycles = 0;
    for (unsigned S = 0; S != log2Exact(N); ++S)
      Cycles += DppUnit(N, 2, S, Lanes).latencyCycles() + 4;
    return Cycles;
  }
  const std::uint64_t Radix4Size = Plan.hasRadix2Stage() ? N / 2 : N;
  std::uint64_t Cycles = 0;
  // Per radix-4 stage: DPP delay-line fill plus butterfly/TFC pipeline
  // registers (4 for the butterfly tree, 2 for the multiplier).
  for (unsigned S = 0; S != Plan.numRadix4Stages(); ++S) {
    const DppUnit Dpp(Radix4Size, 4, S, Lanes);
    Cycles += Dpp.latencyCycles() + 6;
  }
  if (Plan.hasRadix2Stage()) {
    // The DIT combine pairs j with j + N/2: half a frame must be resident.
    Cycles += ceilDiv(N / 2, Lanes) + 4;
  }
  return Cycles;
}

Picos StreamingKernel::pipelineFillTime() const {
  return pipelineFillCycles() * cyclePicos();
}

std::uint64_t StreamingKernel::cyclesPerFrame() const {
  return ceilDiv(fftSize(), Lanes);
}

KernelResources StreamingKernel::resources() const {
  KernelResources R;
  const std::uint64_t N = fftSize();
  if (Radix == KernelRadix::Radix2) {
    const unsigned R2Groups = Lanes >= 2 ? Lanes / 2 : 1;
    for (unsigned S = 0; S != log2Exact(N); ++S) {
      const DppUnit Dpp(N, 2, S, Lanes);
      const TfcUnit Tfc(N, 2, S, Lanes);
      R.DelayBufferBytes += Dpp.bufferBytes();
      R.TwiddleRomBytes += Tfc.romBytes();
      R.RealMultipliers += Tfc.realMultipliers();
      R.RealAddSub += Tfc.realAddSub();
      R.Muxes += Dpp.muxCount();
      R.RealAddSub += R2Groups * radixBlockCost(2).realAddSub();
    }
    return R;
  }
  const std::uint64_t Radix4Size = Plan.hasRadix2Stage() ? N / 2 : N;
  const unsigned Groups = Lanes >= 4 ? Lanes / 4 : 1;

  for (unsigned S = 0; S != Plan.numRadix4Stages(); ++S) {
    const DppUnit Dpp(Radix4Size, 4, S, Lanes);
    const TfcUnit Tfc(Radix4Size, 4, S, Lanes);
    R.DelayBufferBytes += Dpp.bufferBytes();
    R.TwiddleRomBytes += Tfc.romBytes();
    R.RealMultipliers += Tfc.realMultipliers();
    R.RealAddSub += Tfc.realAddSub();
    R.Muxes += Dpp.muxCount();
    R.RealAddSub += Groups * radixBlockCost(4).realAddSub();
  }
  if (Plan.hasRadix2Stage()) {
    R.DelayBufferBytes += (N / 2) * ElementBytes;
    R.TwiddleRomBytes += (N / 2) * ElementBytes;
    const unsigned R2Groups = Lanes >= 2 ? Lanes / 2 : 1;
    R.RealMultipliers += 4 * R2Groups;
    R.RealAddSub += 2 * R2Groups + R2Groups * radixBlockCost(2).realAddSub();
    R.Muxes += R2Groups * 4;
  }
  return R;
}

double StreamingKernel::achievableClockMHz(std::uint64_t FftSize) {
  // Anchored at the paper's Virtex-7 implementation points; log-linear
  // between them, flat below, gently degrading above.
  const double Log2N = std::log2(static_cast<double>(FftSize));
  if (Log2N <= 11.0)
    return 250.0;
  if (Log2N <= 12.0)
    return 250.0 + (200.0 - 250.0) * (Log2N - 11.0);
  if (Log2N <= 13.0)
    return 200.0 + (180.0 - 200.0) * (Log2N - 12.0);
  const double Beyond = Log2N - 13.0;
  return std::max(100.0, 180.0 - 15.0 * Beyond);
}
