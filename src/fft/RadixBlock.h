//===- fft/RadixBlock.h - Butterfly computation blocks ----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The radix blocks of the paper's 1D FFT kernel (Fig. 2a): radix-2 and
/// radix-4 butterflies built from complex adders/subtractors only (the
/// radix-4 block's multiplications by -j are wiring swaps, not
/// multipliers). The functions compute the decimation-in-time butterfly
/// on already-twiddled inputs; resource accessors report the adder/
/// subtractor cost the paper's architecture pays per block instance.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FFT_RADIXBLOCK_H
#define FFT3D_FFT_RADIXBLOCK_H

#include "fft/Complex.h"

#include <array>

namespace fft3d {

/// Radix-2 DIT butterfly: (a, b) -> (a + b, a - b). Inputs are
/// pre-twiddled.
void radix2Butterfly(CplxD &A, CplxD &B);

/// Radix-4 DIT butterfly on pre-twiddled inputs (forward transform,
/// i.e. the internal 4-point DFT uses omega = -i). In-place over \p X.
void radix4Butterfly(std::array<CplxD, 4> &X);

/// Radix-4 DIT butterfly for the inverse transform (omega = +i).
void radix4ButterflyInverse(std::array<CplxD, 4> &X);

/// Resource model of one radix block instance (per paper Fig. 2a: "each
/// radix block is composed of complex adders and subtractors").
struct RadixBlockCost {
  unsigned Radix = 4;
  unsigned ComplexAdders = 0;
  unsigned ComplexSubtractors = 0;

  /// A complex adder/subtractor is two real ones.
  unsigned realAddSub() const {
    return 2 * (ComplexAdders + ComplexSubtractors);
  }
};

/// Cost of a radix-\p Radix block (Radix must be 2 or 4).
RadixBlockCost radixBlockCost(unsigned Radix);

} // namespace fft3d

#endif // FFT3D_FFT_RADIXBLOCK_H
