//===- fft/ReferenceDft.cpp - O(N^2) reference transforms -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/ReferenceDft.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

using namespace fft3d;

std::vector<CplxD> fft3d::referenceDft(const std::vector<CplxD> &Input,
                                       bool Inverse) {
  const std::size_t N = Input.size();
  assert(N != 0 && "empty input");
  const double Sign = Inverse ? 1.0 : -1.0;
  std::vector<CplxD> Output(N);
  for (std::size_t K = 0; K != N; ++K) {
    CplxD Sum = 0.0;
    for (std::size_t J = 0; J != N; ++J) {
      const double Angle = Sign * 2.0 * std::numbers::pi *
                           static_cast<double>(K * J % N) /
                           static_cast<double>(N);
      Sum += Input[J] * CplxD(std::cos(Angle), std::sin(Angle));
    }
    Output[K] = Inverse ? Sum / static_cast<double>(N) : Sum;
  }
  return Output;
}

std::vector<CplxD> fft3d::referenceDft2d(const std::vector<CplxD> &Input,
                                         std::uint64_t Rows,
                                         std::uint64_t Cols, bool Inverse) {
  assert(Input.size() == Rows * Cols && "matrix shape mismatch");
  const double Sign = Inverse ? 1.0 : -1.0;
  std::vector<CplxD> Output(Input.size());
  for (std::uint64_t KR = 0; KR != Rows; ++KR) {
    for (std::uint64_t KC = 0; KC != Cols; ++KC) {
      CplxD Sum = 0.0;
      for (std::uint64_t R = 0; R != Rows; ++R) {
        for (std::uint64_t C = 0; C != Cols; ++C) {
          const double Angle =
              Sign * 2.0 * std::numbers::pi *
              (static_cast<double>(KR * R) / static_cast<double>(Rows) +
               static_cast<double>(KC * C) / static_cast<double>(Cols));
          Sum += Input[R * Cols + C] * CplxD(std::cos(Angle), std::sin(Angle));
        }
      }
      if (Inverse)
        Sum /= static_cast<double>(Rows * Cols);
      Output[KR * Cols + KC] = Sum;
    }
  }
  return Output;
}

double fft3d::maxAbsDiff(const std::vector<CplxD> &A,
                         const std::vector<CplxD> &B) {
  assert(A.size() == B.size() && "length mismatch");
  double Max = 0.0;
  for (std::size_t I = 0; I != A.size(); ++I)
    Max = std::max(Max, std::abs(A[I] - B[I]));
  return Max;
}
