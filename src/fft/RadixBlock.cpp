//===- fft/RadixBlock.cpp - Butterfly computation blocks ------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/RadixBlock.h"

#include "support/ErrorHandling.h"

using namespace fft3d;

void fft3d::radix2Butterfly(CplxD &A, CplxD &B) {
  const CplxD Sum = A + B;
  const CplxD Diff = A - B;
  A = Sum;
  B = Diff;
}

/// Multiplication by -j is a component swap + negation (no multiplier).
static CplxD mulMinusJ(CplxD V) { return CplxD(V.imag(), -V.real()); }
static CplxD mulPlusJ(CplxD V) { return CplxD(-V.imag(), V.real()); }

void fft3d::radix4Butterfly(std::array<CplxD, 4> &X) {
  const CplxD T0 = X[0] + X[2];
  const CplxD T1 = X[0] - X[2];
  const CplxD T2 = X[1] + X[3];
  const CplxD T3 = mulMinusJ(X[1] - X[3]);
  X[0] = T0 + T2;
  X[1] = T1 + T3;
  X[2] = T0 - T2;
  X[3] = T1 - T3;
}

void fft3d::radix4ButterflyInverse(std::array<CplxD, 4> &X) {
  const CplxD T0 = X[0] + X[2];
  const CplxD T1 = X[0] - X[2];
  const CplxD T2 = X[1] + X[3];
  const CplxD T3 = mulPlusJ(X[1] - X[3]);
  X[0] = T0 + T2;
  X[1] = T1 + T3;
  X[2] = T0 - T2;
  X[3] = T1 - T3;
}

RadixBlockCost fft3d::radixBlockCost(unsigned Radix) {
  RadixBlockCost Cost;
  Cost.Radix = Radix;
  switch (Radix) {
  case 2:
    Cost.ComplexAdders = 1;
    Cost.ComplexSubtractors = 1;
    return Cost;
  case 4:
    // Two stages of 2 adds + 2 subs each (T0..T3 then the outputs).
    Cost.ComplexAdders = 4;
    Cost.ComplexSubtractors = 4;
    return Cost;
  default:
    fft3d_unreachable("only radix 2 and 4 blocks are modelled");
  }
}
