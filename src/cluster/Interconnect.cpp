//===- cluster/Interconnect.cpp - Inter-stack link model ------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "cluster/Interconnect.h"

#include "fault/ClusterFaults.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>

using namespace fft3d;

Interconnect::Interconnect(EventQueue &Events, const ClusterConfig &Config)
    : Events(Events), Config(Config) {
  const unsigned S = Config.Stacks;
  Resources.resize(2 * S);
  for (unsigned I = 0; I != S; ++I) {
    if (Config.Topology == ClusterTopology::AllToAll) {
      Resources[I].Name = "egress" + std::to_string(I);
      Resources[S + I].Name = "ingress" + std::to_string(I);
    } else {
      // Segment I joins stacks I and (I+1) % S; cw crosses it upward,
      // ccw downward.
      Resources[I].Name = "cw" + std::to_string(I);
      Resources[S + I].Name = "ccw" + std::to_string(I);
    }
  }
}

Picos Interconnect::txTime(std::uint64_t Bytes) const {
  const double Ps = static_cast<double>(Bytes) *
                    static_cast<double>(PicosPerNano) / Config.LinkGBps;
  const auto T = static_cast<Picos>(Ps + 0.5);
  return T == 0 ? 1 : T;
}

void Interconnect::pathFor(unsigned Src, unsigned Dst,
                           std::vector<unsigned> &Hops) const {
  Hops.clear();
  const unsigned S = Config.Stacks;
  if (Config.Topology == ClusterTopology::AllToAll) {
    Hops.push_back(Src);     // egress port of Src
    Hops.push_back(S + Dst); // ingress port of Dst
    return;
  }
  const unsigned Cw = (Dst + S - Src) % S;
  const unsigned Ccw = S - Cw;
  if (Cw <= Ccw) {
    for (unsigned At = Src; At != Dst; At = (At + 1) % S)
      Hops.push_back(At); // cw over segment At
  } else {
    for (unsigned At = Src; At != Dst; At = (At + S - 1) % S)
      Hops.push_back(S + (At + S - 1) % S); // ccw over segment At-1
  }
}

Picos Interconnect::reserveAttempt(Picos Ready, Picos Serial, Picos TxFirst,
                                   std::uint64_t Packets,
                                   std::uint64_t Bytes) {
  if (Config.Topology == ClusterTopology::AllToAll) {
    // One hop, two simultaneous reservations: the sender's egress
    // port and the receiver's ingress port.
    Resource &E = Resources[PathScratch[0]];
    Resource &I = Resources[PathScratch[1]];
    const Picos Start = std::max({Ready, E.BusyUntil, I.BusyUntil});
    const Picos End = Start + Serial;
    E.BusyUntil = I.BusyUntil = End;
    for (Resource *R : {&E, &I}) {
      R->Stats.Packets += Packets;
      R->Stats.Bytes += Bytes;
      R->Stats.BusyTime += Serial;
    }
    // Queueing counted once per message (on the egress side).
    E.Stats.QueueDelay += Start - Ready;
    return End;
  }
  // Store-and-forward along the ring: hop h+1 begins once the first
  // packet clears hop h, and drains at the same rate, so each hop adds
  // one packet time plus the hop latency.
  Picos End = Ready;
  for (const unsigned H : PathScratch) {
    Resource &R = Resources[H];
    const Picos Start = std::max(Ready, R.BusyUntil);
    End = Start + Serial;
    R.BusyUntil = End;
    R.Stats.Packets += Packets;
    R.Stats.Bytes += Bytes;
    R.Stats.BusyTime += Serial;
    R.Stats.QueueDelay += Start - Ready;
    Ready = Start + TxFirst + Config.LinkLatencyPicos;
  }
  return End;
}

Picos Interconnect::send(unsigned Src, unsigned Dst, std::uint64_t Bytes,
                         std::uint64_t GranuleBytes,
                         EventQueue::Action OnDone) {
  return transfer(Src, Dst, Bytes, GranuleBytes, std::move(OnDone)).Delivery;
}

Interconnect::SendOutcome
Interconnect::transfer(unsigned Src, unsigned Dst, std::uint64_t Bytes,
                       std::uint64_t GranuleBytes,
                       EventQueue::Action OnDone) {
  if (Src >= Config.Stacks || Dst >= Config.Stacks)
    reportFatalError("interconnect send outside the cluster");
  const Picos Now = Events.now();
  SendOutcome Out;
  Out.Delivery = Now;

  if (Src != Dst && Bytes != 0) {
    pathFor(Src, Dst, PathScratch);
    const std::uint64_t Payload =
        GranuleBytes == 0
            ? Config.PacketBytes
            : std::min(std::max<std::uint64_t>(GranuleBytes, 1),
                       Config.PacketBytes);
    const std::uint64_t Packets = ceilDiv(Bytes, Payload);
    const std::uint64_t LastChunk = Bytes - (Packets - 1) * Payload;
    // Per-packet wire occupancy includes the framing flits; the whole
    // message's serialization on one resource is closed-form from the
    // uniform packet stream.
    const Picos TxFull = txTime(Payload + Config.PacketHeaderBytes);
    const Picos TxLast = txTime(LastChunk + Config.PacketHeaderBytes);

    if (!Faults || !Faults->affectsTransfers()) {
      // Fault-free fast path: one attempt, legacy arithmetic, nothing
      // else touched.
      const Picos Serial =
          static_cast<Picos>(Packets - 1) * TxFull + TxLast;
      const Picos TxFirst = Packets > 1 ? TxFull : TxLast;
      Out.Delivery = reserveAttempt(Now, Serial, TxFirst, Packets, Bytes) +
                     Config.LinkLatencyPicos;
    } else {
      const std::uint64_t MsgId = Messages;
      std::uint64_t Remaining = Packets;
      Picos Ready = Now;
      for (unsigned Round = 0;; ++Round) {
        // Lane loss stretches serialization by the worst degrade
        // factor along the path; retransmissions resend full packets.
        double Scale = 1.0;
        for (const unsigned H : PathScratch)
          Scale = std::max(Scale, Faults->linkScale(H, Ready));
        const bool First = Round == 0;
        Picos Serial =
            First ? static_cast<Picos>(Remaining - 1) * TxFull + TxLast
                  : static_cast<Picos>(Remaining) * TxFull;
        Picos TxFirst = First && Packets == 1 ? TxLast : TxFull;
        if (Scale > 1.0) {
          Serial = static_cast<Picos>(static_cast<double>(Serial) * Scale +
                                      0.5);
          TxFirst = static_cast<Picos>(static_cast<double>(TxFirst) * Scale +
                                       0.5);
        }
        const std::uint64_t AttemptBytes =
            First ? Bytes : Remaining * Payload;
        const Picos End =
            reserveAttempt(Ready, Serial, TxFirst, Remaining, AttemptBytes);

        // Loss decision, pinned to the attempt's submission time: a
        // dead/partitioned endpoint black-holes everything, otherwise
        // each path resource drops independently.
        const bool Blackhole = Faults->stackPartitioned(Src, Ready) ||
                               !Faults->stackReachable(Dst, Ready);
        double Loss = 1.0;
        if (!Blackhole) {
          double Survive = 1.0;
          for (const unsigned H : PathScratch)
            Survive *= 1.0 - Faults->linkLossRate(H, Ready);
          Loss = 1.0 - Survive;
        }
        std::uint64_t Lost = 0;
        if (Loss >= 1.0) {
          Lost = Remaining;
        } else if (Loss > 0.0) {
          // Expected loss, the fraction resolved by one deterministic
          // residual draw - so a 0.4% rate still bites small messages.
          const double Expected = Loss * static_cast<double>(Remaining);
          Lost = static_cast<std::uint64_t>(Expected);
          if (Faults->lossResidual(PathScratch[0], MsgId, Round,
                                   Expected - static_cast<double>(Lost)))
            Lost += 1;
          Lost = std::min(Lost, Remaining);
        }
        if (Lost == 0) {
          Out.Delivery = End + Config.LinkLatencyPicos;
          break;
        }
        if (Round == Config.RetransmitBudget) {
          // Budget exhausted: the sender concludes failure one ack
          // timeout after its final attempt.
          Out.Failed = true;
          Out.Delivery = End + Config.RetransmitTimeoutPicos;
          break;
        }
        Out.Retransmits += Lost;
        for (const unsigned H : PathScratch)
          Resources[H].Stats.Retransmits += Lost;
        const Picos Backoff = Config.retransmitBackoff(Round + 1);
        Out.BackoffTime += Backoff;
        if (Trace && Trace->wants(TraceCatXfer))
          Trace->instant(TraceCatXfer, "retransmit", TracePid, /*Tid=*/Src,
                         End, "lost", Lost, "round", Round + 1);
        Ready = End + Config.RetransmitTimeoutPicos + Backoff;
        Remaining = Lost;
      }
      RetransPackets += Out.Retransmits;
      BackoffTotal += Out.BackoffTime;
      FailedMessages += Out.Failed ? 1 : 0;
    }
  }

  Messages += 1;
  PayloadBytes += Bytes;
  LastDelivery = std::max(LastDelivery, Out.Delivery);
  if (Trace && Trace->wants(TraceCatXfer) && Src != Dst)
    Trace->span(TraceCatXfer, "xfer", TracePid, /*Tid=*/Src, Now,
                Out.Delivery - Now, "bytes", Bytes, "dst", Dst);
  if (OnDone)
    Events.scheduleAt(Out.Delivery, std::move(OnDone));
  return Out;
}

Picos Interconnect::uncontendedTime(std::uint64_t Bytes, unsigned Hops,
                                    std::uint64_t GranuleBytes) const {
  if (Bytes == 0 || Hops == 0)
    return 0;
  // Same closed form as send(), on a private idle fabric.
  const std::uint64_t Payload =
      GranuleBytes == 0
          ? Config.PacketBytes
          : std::min(std::max<std::uint64_t>(GranuleBytes, 1),
                     Config.PacketBytes);
  const std::uint64_t Packets = ceilDiv(Bytes, Payload);
  const std::uint64_t LastChunk = Bytes - (Packets - 1) * Payload;
  const Picos TxFull = txTime(Payload + Config.PacketHeaderBytes);
  const Picos TxLast = txTime(LastChunk + Config.PacketHeaderBytes);
  const Picos Serial = static_cast<Picos>(Packets - 1) * TxFull + TxLast;
  const Picos TxFirst = Packets > 1 ? TxFull : TxLast;
  return Serial + static_cast<Picos>(Hops - 1) * (TxFirst) +
         static_cast<Picos>(Hops) * Config.LinkLatencyPicos;
}

void Interconnect::exportTo(MetricsRegistry &Registry) const {
  for (const Resource &R : Resources) {
    const MetricLabels Labels{{"link", R.Name}};
    Registry.counter("cluster.link.packets", Labels).add(R.Stats.Packets);
    Registry.counter("cluster.link.bytes", Labels).add(R.Stats.Bytes);
    Registry.counter("cluster.link.busy_ps", Labels).add(R.Stats.BusyTime);
    Registry.counter("cluster.link.queue_ps", Labels)
        .add(R.Stats.QueueDelay);
    Registry.counter("cluster.link.retrans", Labels)
        .add(R.Stats.Retransmits);
  }
  Registry.counter("cluster.xfer.messages").add(Messages);
  Registry.counter("cluster.xfer.bytes").add(PayloadBytes);
  Registry.counter("cluster.xfer.retrans_packets").add(RetransPackets);
  Registry.counter("cluster.xfer.backoff_ps").add(BackoffTotal);
  Registry.counter("cluster.xfer.failed").add(FailedMessages);
}

void Interconnect::resetStats() {
  for (Resource &R : Resources)
    R.Stats = LinkStats();
  Messages = 0;
  PayloadBytes = 0;
  RetransPackets = 0;
  BackoffTotal = 0;
  FailedMessages = 0;
}
