//===- cluster/Interconnect.cpp - Inter-stack link model ------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "cluster/Interconnect.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>

using namespace fft3d;

Interconnect::Interconnect(EventQueue &Events, const ClusterConfig &Config)
    : Events(Events), Config(Config) {
  const unsigned S = Config.Stacks;
  Resources.resize(2 * S);
  for (unsigned I = 0; I != S; ++I) {
    if (Config.Topology == ClusterTopology::AllToAll) {
      Resources[I].Name = "egress" + std::to_string(I);
      Resources[S + I].Name = "ingress" + std::to_string(I);
    } else {
      // Segment I joins stacks I and (I+1) % S; cw crosses it upward,
      // ccw downward.
      Resources[I].Name = "cw" + std::to_string(I);
      Resources[S + I].Name = "ccw" + std::to_string(I);
    }
  }
}

Picos Interconnect::txTime(std::uint64_t Bytes) const {
  const double Ps = static_cast<double>(Bytes) *
                    static_cast<double>(PicosPerNano) / Config.LinkGBps;
  const auto T = static_cast<Picos>(Ps + 0.5);
  return T == 0 ? 1 : T;
}

void Interconnect::pathFor(unsigned Src, unsigned Dst,
                           std::vector<unsigned> &Hops) const {
  Hops.clear();
  const unsigned S = Config.Stacks;
  if (Config.Topology == ClusterTopology::AllToAll) {
    Hops.push_back(Src);     // egress port of Src
    Hops.push_back(S + Dst); // ingress port of Dst
    return;
  }
  const unsigned Cw = (Dst + S - Src) % S;
  const unsigned Ccw = S - Cw;
  if (Cw <= Ccw) {
    for (unsigned At = Src; At != Dst; At = (At + 1) % S)
      Hops.push_back(At); // cw over segment At
  } else {
    for (unsigned At = Src; At != Dst; At = (At + S - 1) % S)
      Hops.push_back(S + (At + S - 1) % S); // ccw over segment At-1
  }
}

Picos Interconnect::send(unsigned Src, unsigned Dst, std::uint64_t Bytes,
                         std::uint64_t GranuleBytes,
                         EventQueue::Action OnDone) {
  if (Src >= Config.Stacks || Dst >= Config.Stacks)
    reportFatalError("interconnect send outside the cluster");
  const Picos Now = Events.now();
  Picos Delivery = Now;

  if (Src != Dst && Bytes != 0) {
    pathFor(Src, Dst, PathScratch);
    const std::uint64_t Payload =
        GranuleBytes == 0
            ? Config.PacketBytes
            : std::min(std::max<std::uint64_t>(GranuleBytes, 1),
                       Config.PacketBytes);
    const std::uint64_t Packets = ceilDiv(Bytes, Payload);
    const std::uint64_t LastChunk = Bytes - (Packets - 1) * Payload;
    // Per-packet wire occupancy includes the framing flits; the whole
    // message's serialization on one resource is closed-form from the
    // uniform packet stream.
    const Picos TxFull = txTime(Payload + Config.PacketHeaderBytes);
    const Picos TxLast = txTime(LastChunk + Config.PacketHeaderBytes);
    const Picos Serial =
        static_cast<Picos>(Packets - 1) * TxFull + TxLast;
    const Picos TxFirst = Packets > 1 ? TxFull : TxLast;

    if (Config.Topology == ClusterTopology::AllToAll) {
      // One hop, two simultaneous reservations: the sender's egress
      // port and the receiver's ingress port.
      Resource &E = Resources[PathScratch[0]];
      Resource &I = Resources[PathScratch[1]];
      const Picos Start = std::max({Now, E.BusyUntil, I.BusyUntil});
      const Picos End = Start + Serial;
      E.BusyUntil = I.BusyUntil = End;
      for (Resource *R : {&E, &I}) {
        R->Stats.Packets += Packets;
        R->Stats.Bytes += Bytes;
        R->Stats.BusyTime += Serial;
      }
      // Queueing counted once per message (on the egress side).
      E.Stats.QueueDelay += Start - Now;
      Delivery = End + Config.LinkLatencyPicos;
    } else {
      // Store-and-forward along the ring: hop h+1 begins once the
      // first packet clears hop h, and drains at the same rate, so
      // each hop adds one packet time plus the hop latency.
      Picos Ready = Now;
      Picos End = Now;
      for (const unsigned H : PathScratch) {
        Resource &R = Resources[H];
        const Picos Start = std::max(Ready, R.BusyUntil);
        End = Start + Serial;
        R.BusyUntil = End;
        R.Stats.Packets += Packets;
        R.Stats.Bytes += Bytes;
        R.Stats.BusyTime += Serial;
        R.Stats.QueueDelay += Start - Ready;
        Ready = Start + TxFirst + Config.LinkLatencyPicos;
      }
      Delivery = End + Config.LinkLatencyPicos;
    }
  }

  Messages += 1;
  PayloadBytes += Bytes;
  LastDelivery = std::max(LastDelivery, Delivery);
  if (Trace && Trace->wants(TraceCatXfer) && Src != Dst)
    Trace->span(TraceCatXfer, "xfer", TracePid, /*Tid=*/Src, Now,
                Delivery - Now, "bytes", Bytes, "dst", Dst);
  if (OnDone)
    Events.scheduleAt(Delivery, std::move(OnDone));
  return Delivery;
}

Picos Interconnect::uncontendedTime(std::uint64_t Bytes, unsigned Hops,
                                    std::uint64_t GranuleBytes) const {
  if (Bytes == 0 || Hops == 0)
    return 0;
  // Same closed form as send(), on a private idle fabric.
  const std::uint64_t Payload =
      GranuleBytes == 0
          ? Config.PacketBytes
          : std::min(std::max<std::uint64_t>(GranuleBytes, 1),
                     Config.PacketBytes);
  const std::uint64_t Packets = ceilDiv(Bytes, Payload);
  const std::uint64_t LastChunk = Bytes - (Packets - 1) * Payload;
  const Picos TxFull = txTime(Payload + Config.PacketHeaderBytes);
  const Picos TxLast = txTime(LastChunk + Config.PacketHeaderBytes);
  const Picos Serial = static_cast<Picos>(Packets - 1) * TxFull + TxLast;
  const Picos TxFirst = Packets > 1 ? TxFull : TxLast;
  return Serial + static_cast<Picos>(Hops - 1) * (TxFirst) +
         static_cast<Picos>(Hops) * Config.LinkLatencyPicos;
}

void Interconnect::exportTo(MetricsRegistry &Registry) const {
  for (const Resource &R : Resources) {
    const MetricLabels Labels{{"link", R.Name}};
    Registry.counter("cluster.link.packets", Labels).add(R.Stats.Packets);
    Registry.counter("cluster.link.bytes", Labels).add(R.Stats.Bytes);
    Registry.counter("cluster.link.busy_ps", Labels).add(R.Stats.BusyTime);
    Registry.counter("cluster.link.queue_ps", Labels)
        .add(R.Stats.QueueDelay);
  }
  Registry.counter("cluster.xfer.messages").add(Messages);
  Registry.counter("cluster.xfer.bytes").add(PayloadBytes);
}

void Interconnect::resetStats() {
  for (Resource &R : Resources)
    R.Stats = LinkStats();
  Messages = 0;
  PayloadBytes = 0;
}
