//===- cluster/ClusterLayoutPlanner.h - Two-level Eq. 1 ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-level generalization of the paper's Eq. 1: block within vault
/// within stack. The single-stack planner chooses the block shape (w, h)
/// from the device timing and the number m of column streams buffered
/// concurrently; the cluster planner additionally chooses the stack-level
/// pencil assignment and re-solves Eq. 1 per stack with the *per-stack*
/// stream count.
///
/// Under the two-level placement, stack i owns rows [i*N/S, (i+1)*N/S)
/// before the transpose and columns [i*N/S, (i+1)*N/S) after it. Each
/// ordered pair of stacks then exchanges exactly one contiguous
/// (N/S) x (N/S) tile, and because the sender's staging blocks are
/// shaped with w | N/S, every tile decomposes into whole blocks: the
/// all-to-all reads whole DRAM rows on the sender and lands w-element
/// bursts into the receiver's re-planned layout. The receiver's plan
/// solves Eq. 1 with m = N/S - phase 2 on each stack only runs its own
/// N/S column streams - which pushes small clusters into the
/// buffer-limited regime (taller blocks) exactly as the equation
/// predicts.
///
/// The round-robin placement is the naive comparator: rows and columns
/// dealt modulo S, so the same tile volume crosses the links as
/// element-granular scatter traffic and the per-stack plan has no slab
/// structure to exploit.
///
/// With S = 1 both placements degenerate to the single-stack planner's
/// plan, byte-identically: m = N/1 is exactly the m = N default of
/// LayoutPlanner::plan, and the region-shaping clamps are no-ops on an
/// N x N region - the property the degeneracy test pins.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CLUSTER_CLUSTERLAYOUTPLANNER_H
#define FFT3D_CLUSTER_CLUSTERLAYOUTPLANNER_H

#include "cluster/ClusterConfig.h"
#include "layout/LayoutPlanner.h"

namespace fft3d {

/// Joint stack-level + per-stack layout decision for one distributed
/// N x N transform.
struct ClusterPlan {
  unsigned Stacks = 1;
  StackPlacement Placement = StackPlacement::TwoLevel;
  /// Slab extent per stack: N / Stacks rows before the transpose,
  /// N / Stacks columns after it.
  std::uint64_t RowsPerStack = 0;
  std::uint64_t ColsPerStack = 0;
  /// Per-stack layout of the phase-1 output (the RowsPerStack x N
  /// staging region the transpose reads from). Shaped so blocks tile
  /// the per-destination (RowsPerStack x ColsPerStack) exchange tiles.
  BlockPlan Staging;
  /// Per-stack layout of the phase-2 input (the N x ColsPerStack
  /// receive region): Eq. 1 re-solved with the per-stack stream count
  /// m = ColsPerStack.
  BlockPlan Receive;
  /// Payload each ordered (src != dst) stack pair exchanges.
  std::uint64_t PairBytes = 0;
  /// Contiguous burst per transpose read on the sender / write on the
  /// receiver - the quantity the placement fights for. Two-level reads
  /// whole staging blocks and lands Receive.W-wide chunks; round-robin
  /// moves single elements.
  std::uint64_t EgressBurstBytes = 0;
  std::uint64_t IngressBurstBytes = 0;
};

/// Solves the two-level layout problem for a given device.
class ClusterLayoutPlanner {
public:
  ClusterLayoutPlanner(const Geometry &G, const Timing &T,
                       unsigned ElementBytes);

  /// Plans the distributed N x N transform over \p Stacks stacks, each
  /// spreading its local blocks across \p VaultsParallel vaults.
  /// \p Stacks must divide \p N.
  ClusterPlan plan(std::uint64_t N, unsigned Stacks,
                   unsigned VaultsParallel,
                   StackPlacement Placement = StackPlacement::TwoLevel)
      const;

  /// The survivor re-plan after stack failures: the same stack-level
  /// decision, but this stack's phase-2 plan re-solved for the \p
  /// ColsOwned column streams it actually holds (its own slab plus any
  /// migrated ones). \p ColsOwned need not be a power of two - a
  /// survivor inheriting two dead slabs owns 3 * N/S columns - and the
  /// region shaping clamps the block width until it tiles. With
  /// ColsOwned == N / Stacks this is exactly plan().
  ClusterPlan planDegraded(std::uint64_t N, unsigned Stacks,
                           unsigned VaultsParallel,
                           StackPlacement Placement,
                           std::uint64_t ColsOwned) const;

  const LayoutPlanner &inner() const { return Inner; }

private:
  /// Re-shapes \p Plan's (w, h) so h | Rows and w | Cols, moving
  /// power-of-two factors between the two while preserving w * h where
  /// possible (a no-op when the block already tiles the region). When
  /// the region is smaller than one row buffer the block shrinks to the
  /// region and no longer fills a DRAM row.
  BlockPlan shapeToRegion(BlockPlan Plan, std::uint64_t Rows,
                          std::uint64_t Cols) const;

  LayoutPlanner Inner;
  unsigned ElementBytes;
};

} // namespace fft3d

#endif // FFT3D_CLUSTER_CLUSTERLAYOUTPLANNER_H
