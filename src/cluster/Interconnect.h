//===- cluster/Interconnect.h - Inter-stack link model ----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modeled interconnect between memory stacks: per-link bandwidth,
/// per-hop latency, and FCFS contention queueing, driven as event traffic
/// on the caller's simulated clock. Two topologies:
///
///  - AllToAll: every stack owns one egress and one ingress port of
///    LinkGBps each (a full crossbar between ports). A message reserves
///    its source's egress port and its destination's ingress port for
///    its whole serialization, so concurrent senders to one receiver
///    queue on that receiver's ingress - the incast the transpose must
///    survive.
///  - Ring: S bidirectional segments; a message hops store-and-forward
///    along the shorter direction (ties go clockwise), reserving each
///    physical segment it crosses. Packets pipeline across hops: hop
///    h+1 starts as soon as the first packet clears hop h.
///
/// Messages are chunked into packets of min(PacketBytes, the sender's
/// contiguous-run granule), each carrying PacketHeaderBytes of framing;
/// serialization time is closed-form over the packet count, so an
/// element-granular exchange costs its (large) header tax without a
/// per-element event loop. Reservation is analytic FCFS - each resource
/// keeps a busy-until horizon and messages start at max(ready, horizon)
/// in submission order - so a fixed send order yields bit-identical
/// timings on every host thread count, matching the simulator's
/// determinism contract. Deliveries are posted to the EventQueue,
/// keeping interconnect and memory traffic on one clock.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CLUSTER_INTERCONNECT_H
#define FFT3D_CLUSTER_INTERCONNECT_H

#include "cluster/ClusterConfig.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "sim/EventQueue.h"

#include <string>
#include <vector>

namespace fft3d {

class ClusterFaultInjector;

/// Traffic and queueing counters of one directed link resource (a port
/// in AllToAll, a ring segment direction in Ring) - the interconnect's
/// analogue of VaultStats.
struct LinkStats {
  /// Packets that crossed this resource.
  std::uint64_t Packets = 0;
  std::uint64_t Bytes = 0;
  /// Total time the resource carried data.
  Picos BusyTime = 0;
  /// Total time packets waited for the resource (FCFS queueing).
  Picos QueueDelay = 0;
  /// Packets retransmitted across this resource after a loss.
  std::uint64_t Retransmits = 0;

  double utilization(Picos Elapsed) const {
    return Elapsed == 0 ? 0.0
                        : static_cast<double>(BusyTime) /
                              static_cast<double>(Elapsed);
  }
};

/// Event-driven inter-stack message fabric.
class Interconnect {
public:
  /// Builds the fabric for \p Config's topology over \p Config.Stacks
  /// stacks; \p Events is the simulated clock deliveries land on.
  Interconnect(EventQueue &Events, const ClusterConfig &Config);

  /// Attaches observability sinks (either may be null): the tracer gets
  /// one "xfer" span per message (category xfer, tid = source stack),
  /// the registry receives exportTo() counters.
  void setObservability(Tracer *T, MetricsRegistry *M,
                        std::uint32_t TracePid = 0) {
    Trace = T;
    Metrics = M;
    this->TracePid = TracePid;
  }

  /// Attaches the cluster fault oracle (may be null to detach). With no
  /// oracle - or one whose spec never touches transfers - send() runs
  /// the exact fault-free arithmetic: the off path costs nothing and
  /// times identically, which the cluster fault tests pin.
  void setFaults(const ClusterFaultInjector *F) { Faults = F; }

  /// What happened to one transfer() under faults.
  struct SendOutcome {
    /// Delivery time of the last packet - or, for a failed transfer,
    /// the time the sender gave up (one ack timeout past its final
    /// attempt).
    Picos Delivery = 0;
    /// True when the retransmit budget ran out with packets still lost
    /// (hard link failure or partition): the data never arrived.
    bool Failed = false;
    /// Packets retransmitted across all rounds.
    std::uint64_t Retransmits = 0;
    /// Total backoff the sender sat out between rounds.
    Picos BackoffTime = 0;
  };

  /// Submits a \p Bytes-byte message from stack \p Src to stack \p Dst
  /// at the current simulated time. Computes the FCFS-queued delivery
  /// time, schedules \p OnDone (if any) at it, and returns it.
  /// Src == Dst delivers immediately (stack-local data never crosses a
  /// link).
  ///
  /// \p GranuleBytes is the sender's contiguous-run length: packets are
  /// at most min(Config.PacketBytes, GranuleBytes) of payload (0 means
  /// full packets), and every packet pays Config.PacketHeaderBytes of
  /// framing on the wire. A layout whose departing data is contiguous
  /// ships near-full packets; an element-granular scatter ships mostly
  /// headers.
  ///
  /// Under an attached fault oracle the transfer models loss recovery:
  /// each round the packets a degraded/lossy path drops (expected loss,
  /// rounded by a deterministic residual draw) are retransmitted after
  /// an ack timeout plus capped exponential backoff, up to
  /// Config.RetransmitBudget rounds. A transfer into a dead or
  /// partitioned stack, or across a hard-failed link, black-holes every
  /// round and comes back Failed.
  Picos send(unsigned Src, unsigned Dst, std::uint64_t Bytes,
             std::uint64_t GranuleBytes = 0,
             EventQueue::Action OnDone = {});

  /// send() with the full outcome (retransmit counts, failure).
  SendOutcome transfer(unsigned Src, unsigned Dst, std::uint64_t Bytes,
                       std::uint64_t GranuleBytes = 0,
                       EventQueue::Action OnDone = {});

  /// Latest delivery time of any message submitted so far.
  Picos lastDelivery() const { return LastDelivery; }

  unsigned numResources() const {
    return static_cast<unsigned>(Resources.size());
  }
  const LinkStats &resourceStats(unsigned R) const {
    return Resources[R].Stats;
  }
  const std::string &resourceName(unsigned R) const {
    return Resources[R].Name;
  }

  /// Messages and payload bytes submitted so far.
  std::uint64_t messages() const { return Messages; }
  std::uint64_t payloadBytes() const { return PayloadBytes; }

  /// Fabric-wide loss-recovery totals so far.
  std::uint64_t retransmittedPackets() const { return RetransPackets; }
  Picos backoffTime() const { return BackoffTotal; }
  std::uint64_t failedTransfers() const { return FailedMessages; }

  /// Aggregate serialization time of one \p Bytes message over an
  /// uncontended link (no queueing, including per-hop latency for \p
  /// Hops hops) - the lower bound send() converges to on an idle fabric.
  /// \p GranuleBytes as in send().
  Picos uncontendedTime(std::uint64_t Bytes, unsigned Hops = 1,
                        std::uint64_t GranuleBytes = 0) const;

  /// Adds the current counters into \p Registry: per-resource
  /// "cluster.link.*" labeled {link=<name>}, plus "cluster.xfer.*"
  /// fabric totals. Counters add on export, like MemStats::exportTo.
  void exportTo(MetricsRegistry &Registry) const;

  /// Zeroes all counters (busy horizons are kept: the fabric stays on
  /// the simulated clock).
  void resetStats();

private:
  struct Resource {
    std::string Name;
    /// FCFS horizon: the time until which the resource is reserved.
    Picos BusyUntil = 0;
    LinkStats Stats;
  };

  /// Serialization time of \p Bytes at LinkGBps, at least 1 ps.
  Picos txTime(std::uint64_t Bytes) const;
  /// Directed resource chain a Src -> Dst message crosses.
  void pathFor(unsigned Src, unsigned Dst,
               std::vector<unsigned> &Hops) const;
  /// Reserves the PathScratch chain FCFS for one transmission attempt
  /// starting no earlier than \p Ready; returns the attempt's end (the
  /// caller adds the final hop latency).
  Picos reserveAttempt(Picos Ready, Picos Serial, Picos TxFirst,
                       std::uint64_t Packets, std::uint64_t Bytes);

  EventQueue &Events;
  const ClusterConfig &Config;
  std::vector<Resource> Resources;
  Tracer *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;
  const ClusterFaultInjector *Faults = nullptr;
  std::uint32_t TracePid = 0;
  Picos LastDelivery = 0;
  std::uint64_t Messages = 0;
  std::uint64_t PayloadBytes = 0;
  std::uint64_t RetransPackets = 0;
  Picos BackoffTotal = 0;
  std::uint64_t FailedMessages = 0;
  /// Scratch for pathFor, reused across sends.
  mutable std::vector<unsigned> PathScratch;
};

} // namespace fft3d

#endif // FFT3D_CLUSTER_INTERCONNECT_H
