//===- cluster/ClusterLayoutPlanner.cpp - Two-level Eq. 1 -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterLayoutPlanner.h"

#include "fft/Complex.h"
#include "support/ErrorHandling.h"

#include <algorithm>

using namespace fft3d;

ClusterLayoutPlanner::ClusterLayoutPlanner(const Geometry &G,
                                           const Timing &T,
                                           unsigned ElementBytes)
    : Inner(G, T, ElementBytes), ElementBytes(ElementBytes) {}

BlockPlan ClusterLayoutPlanner::shapeToRegion(BlockPlan Plan,
                                              std::uint64_t Rows,
                                              std::uint64_t Cols) const {
  // All quantities are powers of two (the base planner asserts N and
  // produces pow2 w, h), so "divides" is "is no larger than".
  while (Plan.H > Rows || Rows % Plan.H != 0) {
    Plan.H /= 2;
    Plan.W *= 2;
  }
  while (Plan.W > Cols || Cols % Plan.W != 0) {
    Plan.W /= 2;
    if (Plan.H * 2 <= Rows && Rows % (Plan.H * 2) == 0)
      Plan.H *= 2;
    // else: the region is smaller than a row buffer; the block shrinks.
  }
  if (Plan.H == 0 || Plan.W == 0)
    reportFatalError("exchange tile too small for any block shape");
  return Plan;
}

ClusterPlan ClusterLayoutPlanner::planDegraded(std::uint64_t N,
                                               unsigned Stacks,
                                               unsigned VaultsParallel,
                                               StackPlacement Placement,
                                               std::uint64_t ColsOwned)
    const {
  if (ColsOwned == 0 || ColsOwned > N)
    reportFatalError("degraded plan column count outside the matrix");
  ClusterPlan Result = plan(N, Stacks, VaultsParallel, Placement);
  if (ColsOwned == Result.ColsPerStack)
    return Result;
  // Eq. 1 re-solved with the survivor's true stream count: more columns
  // buffered concurrently pushes the shape back toward the global
  // (wider-m) solution, then the clamps make it tile N x ColsOwned.
  Result.Receive = Placement == StackPlacement::TwoLevel
                       ? Inner.plan(N, VaultsParallel, ColsOwned)
                       : Inner.plan(N, VaultsParallel);
  Result.Receive = shapeToRegion(Result.Receive, N, ColsOwned);
  Result.IngressBurstBytes = Placement == StackPlacement::TwoLevel
                                 ? Result.Receive.W * ElementBytes
                                 : ElementBytes;
  return Result;
}

ClusterPlan ClusterLayoutPlanner::plan(std::uint64_t N, unsigned Stacks,
                                       unsigned VaultsParallel,
                                       StackPlacement Placement) const {
  if (Stacks == 0 || N % Stacks != 0)
    reportFatalError("stack count must divide the problem size N");

  ClusterPlan Result;
  Result.Stacks = Stacks;
  Result.Placement = Placement;
  Result.RowsPerStack = N / Stacks;
  Result.ColsPerStack = N / Stacks;
  Result.PairBytes =
      Result.RowsPerStack * Result.ColsPerStack * ElementBytes;

  if (Placement == StackPlacement::TwoLevel) {
    // Level 1 (stack): contiguous slabs. Level 2 (vault): Eq. 1 with the
    // per-stack stream count m = N/S; at S = 1 this is the m = N default
    // and both plans below equal the single-stack planner's, untouched
    // by the shaping clamps.
    Result.Receive =
        Inner.plan(N, VaultsParallel, /*ColumnStreams=*/Result.ColsPerStack);
    Result.Receive = shapeToRegion(Result.Receive, N, Result.ColsPerStack);
    Result.Staging = shapeToRegion(Result.Receive, Result.RowsPerStack,
                                   Result.ColsPerStack);
    Result.EgressBurstBytes =
        Result.Staging.W * Result.Staging.H * ElementBytes;
    Result.IngressBurstBytes = Result.Receive.W * ElementBytes;
  } else {
    // Round-robin keeps the global single-stack plan (it has no slab
    // structure to re-solve for) and pays element-granular exchange.
    Result.Receive = Inner.plan(N, VaultsParallel);
    Result.Receive = shapeToRegion(Result.Receive, N, Result.ColsPerStack);
    Result.Staging = shapeToRegion(Result.Receive, Result.RowsPerStack,
                                   Result.ColsPerStack);
    Result.EgressBurstBytes = ElementBytes;
    Result.IngressBurstBytes = ElementBytes;
  }
  return Result;
}
