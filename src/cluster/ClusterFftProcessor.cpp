//===- cluster/ClusterFftProcessor.cpp - Distributed 2D/3D FFT ------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterFftProcessor.h"

#include "fault/ClusterFaults.h"
#include "fault/FaultSpec.h"
#include "fft/Fft1d.h"
#include "fft/StreamingKernel.h"
#include "layout/LinearLayouts.h"
#include "mem3d/Backend.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <memory>
#include <string>

using namespace fft3d;

namespace {

/// One simulated stack: backend, engine, and the obs wiring. The stacks
/// are simulated sequentially (each on its own engine and clock) and the
/// slowest bounds every phase, as a hardware barrier would.
struct SimStack {
  std::unique_ptr<StackBackend> Backend;
  std::unique_ptr<PhaseEngine> Engine;
};

std::vector<SimStack> buildStacks(const ClusterConfig &Config, Tracer *Trace,
                                  MetricsRegistry *Metrics,
                                  std::uint32_t TracePid) {
  std::vector<SimStack> Stacks(Config.Stacks);
  for (unsigned I = 0; I != Config.Stacks; ++I) {
    SimStack &S = Stacks[I];
    S.Backend = std::make_unique<StackBackend>(Config.Node.Mem,
                                               Config.Node.SimThreads, I);
    S.Engine = std::make_unique<PhaseEngine>(
        S.Backend->memory(), S.Backend->events(),
        Config.Node.MaxSimBytesPerDirection,
        Config.Node.MaxSimOpsPerDirection);
    S.Engine->setShardedEngine(&S.Backend->engine());
    const std::uint32_t Pid = TracePid + I;
    S.Backend->memory().setTracer(Trace, Pid);
    S.Engine->setObservability(Trace, Metrics, Pid);
    if (Trace)
      Trace->setProcessName(Pid, "stack " + std::to_string(I));
    if (Metrics)
      S.Engine->setMetricsLabels(
          MetricLabels{{"stack", std::to_string(I)}});
  }
  return Stacks;
}

/// Tracks the slowest stack's phase result.
void keepSlowest(const PhaseResult &Res, Picos &MaxTime,
                 PhaseResult &Slowest) {
  if (Res.EstimatedPhaseTime >= MaxTime) {
    MaxTime = Res.EstimatedPhaseTime;
    Slowest = Res;
  }
}

/// Canonical balanced all-to-all schedule over one group of stacks:
/// round r sends from every member to the member r steps ahead. A fixed
/// submission order keeps the FCFS fabric deterministic.
void scheduleAllToAll(Interconnect &Net, const std::vector<unsigned> &Group,
                      std::uint64_t Bytes, std::uint64_t GranuleBytes) {
  const unsigned G = static_cast<unsigned>(Group.size());
  for (unsigned Round = 1; Round < G; ++Round)
    for (unsigned I = 0; I != G; ++I)
      Net.send(Group[I], Group[(I + Round) % G], Bytes, GranuleBytes);
}

/// The next stack after \p From (wrapping) that is still reachable at
/// \p Now - the checkpoint buddy and the migration stand-in. Returns
/// \p From itself only when nothing else survives.
unsigned nextReachable(const ClusterFaultInjector &Faults, unsigned From,
                       Picos Now) {
  const unsigned S = Faults.numStacks();
  for (unsigned Step = 1; Step != S; ++Step) {
    const unsigned Candidate = (From + Step) % S;
    if (Faults.stackReachable(Candidate, Now))
      return Candidate;
  }
  return From;
}

/// Mutable fault-tolerance state one timed run threads through its
/// exchange boundaries: who is still alive, and how many logical slabs
/// (own + inherited) each survivor hosts.
struct SurvivorState {
  std::vector<bool> Alive;
  std::vector<unsigned> Hosted;

  explicit SurvivorState(unsigned S) : Alive(S, true), Hosted(S, 1) {}

  std::vector<unsigned> survivors() const {
    std::vector<unsigned> Out;
    for (unsigned I = 0; I != Alive.size(); ++I)
      if (Alive[I])
        Out.push_back(I);
    return Out;
  }
};

/// Slab/pencil ownership along one axis cut into \p Parts chunks of an
/// \p N-extent: contiguous chunks under TwoLevel, modulo dealing under
/// RoundRobin.
struct AxisSplit {
  std::uint64_t N = 0;
  unsigned Parts = 1;
  bool Contiguous = true;

  std::uint64_t chunk() const { return N / Parts; }
  unsigned owner(std::uint64_t I) const {
    return static_cast<unsigned>(Contiguous ? I / chunk() : I % Parts);
  }
  std::uint64_t local(std::uint64_t I) const {
    return Contiguous ? I % chunk() : I / Parts;
  }
  std::uint64_t global(unsigned Owner, std::uint64_t Local) const {
    return Contiguous ? Owner * chunk() + Local : Local * Parts + Owner;
  }
};

/// One fault-tolerant redistribution boundary: advance the fabric clock
/// to the compute barrier \p Wall, checkpoint every live stack's
/// \p CkptBytes to its successor, detect stacks that died since the
/// last boundary (each costs one probe through the full retransmit
/// escalation), run the exchange - grouped while everyone lives, full
/// all-to-all among survivors once anyone has died - and replay the
/// newly dead stacks' pairs from their checkpoints, rehoming tiles
/// addressed to them onto their spare-map survivors. Updates \p State's
/// hosting and the report's protocol fields; returns the link span of
/// the exchange proper (the analogue of the fault-free LinkTime).
Picos faultedExchange(Interconnect &Net, EventQueue &Events,
                      const ClusterFaultInjector &Faults,
                      const ClusterConfig &Config, SurvivorState &State,
                      ClusterReport &Rep, Picos Wall,
                      std::uint64_t CkptBytes,
                      const std::vector<std::vector<unsigned>> &Groups,
                      std::uint64_t MsgBytes, std::uint64_t Granule) {
  const unsigned S = Faults.numStacks();
  Events.runUntil(Wall);

  // 1. Checkpoint: every live stack replicates its slabs to the next
  //    reachable stack, so a copy outlives any single failure.
  const Picos CkptStart = Events.now();
  for (unsigned I = 0; I != S; ++I) {
    if (!State.Alive[I] || !Faults.stackReachable(I, CkptStart))
      continue;
    const unsigned Buddy = nextReachable(Faults, I, CkptStart);
    if (Buddy != I)
      Net.send(I, Buddy, CkptBytes * State.Hosted[I], Granule);
  }
  Events.run();
  Events.runUntil(Net.lastDelivery());
  Rep.CheckpointTime += Events.now() - CkptStart;

  // 2. Detect: a stack that stops answering is declared dead after one
  //    probe exhausts the retransmit budget (the missed-exchange
  //    timeout). Its slabs rehome to the round-robin spare survivor.
  const Picos DetectStart = Events.now();
  std::vector<bool> NewlyDead(S, false);
  bool AnyNew = false;
  for (unsigned I = 0; I != S; ++I)
    if (State.Alive[I] && !Faults.stackReachable(I, DetectStart)) {
      NewlyDead[I] = true;
      State.Alive[I] = false;
      AnyNew = true;
    }
  if (AnyNew) {
    const std::vector<unsigned> Survivors = State.survivors();
    if (Survivors.empty())
      reportFatalError("no stack survives the cluster fault schedule");
    Picos GiveUp = DetectStart;
    for (unsigned D = 0; D != S; ++D) {
      if (!NewlyDead[D])
        continue;
      GiveUp = std::max(
          GiveUp,
          Net.transfer(Survivors.front(), D, Config.PacketBytes).Delivery);
    }
    Events.runUntil(GiveUp);
    Rep.DetectionTime += Events.now() - DetectStart;
    Rep.Replanned = true;
    const std::vector<unsigned> Spare = spareVaultMap(State.Alive);
    for (unsigned D = 0; D != S; ++D)
      if (NewlyDead[D]) {
        Rep.StacksFailed += 1;
        State.Hosted[Spare[D]] += State.Hosted[D];
        State.Hosted[D] = 0;
      }
  }

  // 3. The exchange proper.
  const Picos XStart = Events.now();
  const std::vector<unsigned> Survivors = State.survivors();
  const bool Degraded = Survivors.size() != S;
  if (!Degraded)
    for (const std::vector<unsigned> &G : Groups)
      scheduleAllToAll(Net, G, MsgBytes, Granule);
  else
    scheduleAllToAll(Net, Survivors, MsgBytes, Granule);
  Events.run();
  Events.runUntil(Net.lastDelivery());
  const Picos Link = Events.now() - XStart;

  // 4. Migration: for every ordered pair touching a newly dead stack,
  //    the dead side's checkpoint holder stands in as sender and the
  //    spare survivor stands in as receiver.
  if (AnyNew) {
    const Picos MigStart = Events.now();
    const std::vector<unsigned> Spare = spareVaultMap(State.Alive);
    std::vector<unsigned> StandIn(S);
    for (unsigned I = 0; I != S; ++I)
      StandIn[I] = NewlyDead[I] ? nextReachable(Faults, I, MigStart) : I;
    for (unsigned I = 0; I != S; ++I)
      for (unsigned J = 0; J != S; ++J) {
        if (I == J || (!NewlyDead[I] && !NewlyDead[J]))
          continue;
        if ((!State.Alive[I] && !NewlyDead[I]) ||
            (!State.Alive[J] && !NewlyDead[J]))
          continue; // pairs of earlier casualties already migrated
        Net.send(StandIn[I], NewlyDead[J] ? Spare[J] : J, MsgBytes,
                 Granule);
      }
    Events.run();
    Events.runUntil(Net.lastDelivery());
    Rep.MigrationTime += Events.now() - MigStart;
  }
  return Link;
}

} // namespace

ClusterFftProcessor::ClusterFftProcessor(const ClusterConfig &Config)
    : Config(Config) {
  Config.validate();
}

void ClusterFftProcessor::pencilGrid(unsigned Stacks, unsigned &P1,
                                     unsigned &P2) {
  P1 = 1;
  while (P1 * P1 < Stacks)
    P1 *= 2;
  if (Stacks % P1 != 0)
    reportFatalError("pencil grid requires a power-of-two stack count");
  P2 = Stacks / P1;
}

ClusterReport ClusterFftProcessor::run2d() {
  const std::uint64_t N = Config.Node.N;
  const unsigned S = Config.Stacks;
  const std::uint64_t R = N / S;
  const std::uint64_t C = N / S;
  const ArchParams &Arch = Config.Node.Optimized;

  ClusterReport Rep;
  Rep.N = N;
  Rep.Stacks = S;
  Rep.Topology = Config.Topology;
  const ClusterLayoutPlanner Planner(Config.Node.Mem.Geo,
                                     Config.Node.Mem.Time, ElementBytes);
  Rep.Plan = Planner.plan(N, S, Arch.VaultsParallel, Config.Placement);

  // Four equal regions per stack: slab input, phase-1 staging, the
  // transpose's receive region, and phase-2 output.
  const std::uint64_t SlabBytes = R * N * ElementBytes;
  const std::uint64_t Stride =
      roundUp(SlabBytes, Config.Node.Mem.Geo.RowBufferBytes);
  const RowMajorLayout Input(R, N, ElementBytes, 0);
  const BlockDynamicLayout Staging(R, N, ElementBytes, Stride,
                                   Rep.Plan.Staging.W, Rep.Plan.Staging.H);
  const BlockDynamicLayout Receive(N, C, ElementBytes, 2 * Stride,
                                   Rep.Plan.Receive.W, Rep.Plan.Receive.H);
  // (Phase 2 builds its receive/output layouts per stack: a survivor
  // hosting migrated slabs streams a wider region.)
  // Flat views for the round-robin comparator's element scatter.
  const RowMajorLayout StagingFlat(R, N, ElementBytes, Stride);
  const RowMajorLayout ReceiveFlat(N, C, ElementBytes, 2 * Stride);
  const bool TwoLevel = Config.Placement == StackPlacement::TwoLevel;

  const StreamingKernel Kernel(N, Arch.Lanes, Arch.ClockMHz);
  const double Pace = Kernel.streamGBps();
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Node.Mem.Geo.RowBufferBytes);

  std::vector<SimStack> Stacks =
      buildStacks(Config, Trace, Metrics, TracePid);

  // Phase 1: every stack streams its slab's rows and writes blocks.
  for (SimStack &St : Stacks) {
    RowScanTrace P1Read(Input, RowBuf);
    ChunkedBlockWriteTrace P1Write(Staging);
    St.Engine->setPhaseName("row_phase");
    keepSlowest(St.Engine->run({&P1Read, false, Arch.ReadWindow, Pace, 0},
                               {&P1Write, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.RowPhaseTime, Rep.RowPhase);
  }

  // The all-to-all transpose: link traffic on the interconnect clock,
  // and on every stack a memory phase that reads the departing tiles
  // and lands the arriving ones, both paced at the link rate.
  EventQueue XferEvents;
  Interconnect Net(XferEvents, Config);
  Net.setObservability(Trace, Metrics, TracePid + S);
  if (Trace)
    Trace->setProcessName(TracePid + S, "interconnect");
  // Cluster fault tolerance engages only when the spec has cluster
  // directives: without it the fabric and the schedule below are the
  // exact fault-free path.
  std::unique_ptr<ClusterFaultInjector> CFaults;
  if (S > 1 && Config.Node.Mem.Faults &&
      Config.Node.Mem.Faults->hasClusterFaults())
    CFaults =
        std::make_unique<ClusterFaultInjector>(*Config.Node.Mem.Faults, S,
                                               2 * S);
  Net.setFaults(CFaults.get());
  SurvivorState State(S);

  if (S > 1) {
    if (!CFaults) {
      std::vector<unsigned> All(S);
      for (unsigned I = 0; I != S; ++I)
        All[I] = I;
      // The wire granule is the sender's contiguous run: two-level ships
      // whole staging blocks (full packets), round-robin single elements
      // (mostly framing).
      scheduleAllToAll(Net, All, Rep.Plan.PairBytes,
                       Rep.Plan.EgressBurstBytes);
      XferEvents.run();
      Rep.LinkTime = Net.lastDelivery();
    } else {
      std::vector<std::vector<unsigned>> Groups(1,
                                                std::vector<unsigned>(S));
      for (unsigned I = 0; I != S; ++I)
        Groups[0][I] = I;
      Rep.LinkTime = faultedExchange(Net, XferEvents, *CFaults, Config,
                                     State, Rep, Rep.RowPhaseTime,
                                     SlabBytes, Groups, Rep.Plan.PairBytes,
                                     Rep.Plan.EgressBurstBytes);
    }

    for (unsigned I = 0; I != S; ++I) {
      if (!State.Alive[I])
        continue;
      SimStack &St = Stacks[I];
      std::unique_ptr<TraceSource> Egress, Ingress;
      if (TwoLevel) {
        Egress = std::make_unique<BlockTrace>(Staging,
                                              BlockOrder::RowMajorBlocks);
        Ingress = std::make_unique<ChunkedBlockWriteTrace>(Receive);
      } else {
        Egress = std::make_unique<ColScanTrace>(StagingFlat, ElementBytes);
        Ingress = std::make_unique<ColScanTrace>(ReceiveFlat, ElementBytes);
      }
      St.Engine->setPhaseName("exchange");
      keepSlowest(
          St.Engine->run({Egress.get(), false, Arch.ReadWindow,
                          Config.LinkGBps, 0},
                         {Ingress.get(), true, Arch.WriteWindow,
                          Config.LinkGBps, Config.LinkLatencyPicos}),
          Rep.ExchangeMemTime, Rep.ExchangeMem);
    }
  }
  Rep.ExchangeTime = std::max(Rep.LinkTime, Rep.ExchangeMemTime);

  // Phase 2: whole-block streams down the received block columns. A
  // survivor hosting migrated slabs owns C * hosted columns, re-solves
  // Eq. 1 for that stream count, and streams the larger region (with
  // hosted == 1 everything below reduces to the healthy layouts,
  // byte-identically).
  for (unsigned I = 0; I != S; ++I) {
    if (!State.Alive[I])
      continue;
    SimStack &St = Stacks[I];
    const std::uint64_t MyCols = C * State.Hosted[I];
    const BlockPlan RPlan =
        State.Hosted[I] == 1
            ? Rep.Plan.Receive
            : Planner
                  .planDegraded(N, S, Arch.VaultsParallel, Config.Placement,
                                MyCols)
                  .Receive;
    const std::uint64_t MyStride =
        roundUp(N * MyCols * ElementBytes,
                Config.Node.Mem.Geo.RowBufferBytes);
    const BlockDynamicLayout MyReceive(N, MyCols, ElementBytes, 2 * Stride,
                                       RPlan.W, RPlan.H);
    const BlockDynamicLayout MyOut(N, MyCols, ElementBytes,
                                   2 * Stride + MyStride, RPlan.W, RPlan.H);
    BlockTrace P2Read(MyReceive, BlockOrder::ColMajorBlocks);
    BlockTrace P2Write(MyOut, BlockOrder::ColMajorBlocks);
    St.Engine->setPhaseName("col_phase");
    keepSlowest(St.Engine->run({&P2Read, false, Arch.ReadWindow, Pace, 0},
                               {&P2Write, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.ColPhaseTime, Rep.ColPhase);
  }

  Rep.TotalTime = Rep.RowPhaseTime + Rep.CheckpointTime +
                  Rep.DetectionTime + Rep.ExchangeTime + Rep.MigrationTime +
                  Rep.ColPhaseTime;
  const std::uint64_t MatrixBytes = N * N * ElementBytes;
  Rep.AppThroughputGBps =
      bytesOverPicosToGBps(6 * MatrixBytes, Rep.TotalTime);
  Rep.XferMessages = Net.messages();
  Rep.XferBytes = Net.payloadBytes();
  Rep.Retransmits = Net.retransmittedPackets();
  Rep.BackoffTime = Net.backoffTime();
  Rep.XferFailed = Net.failedTransfers();
  if (CFaults)
    Rep.SurvivorStacks = static_cast<unsigned>(State.survivors().size());
  if (Metrics)
    Net.exportTo(*Metrics);
  return Rep;
}

ClusterReport ClusterFftProcessor::run3d() {
  const std::uint64_t N = Config.Node.N;
  const unsigned S = Config.Stacks;
  unsigned P1 = 1, P2 = 1;
  pencilGrid(S, P1, P2);
  const ArchParams &Arch = Config.Node.Optimized;

  ClusterReport Rep;
  Rep.N = N;
  Rep.Stacks = S;
  Rep.Topology = Config.Topology;
  const ClusterLayoutPlanner Planner(Config.Node.Mem.Geo,
                                     Config.Node.Mem.Time, ElementBytes);
  Rep.Plan = Planner.plan(N, S, Arch.VaultsParallel, Config.Placement);

  // Each stack holds N^3/S elements: N^2/S pencils of N elements,
  // streamed as an (N^2/S) x N region. Same four-region scheme as 2D.
  const std::uint64_t Lines = N * N / S;
  const std::uint64_t LocalBytes = Lines * N * ElementBytes;
  const std::uint64_t Stride =
      roundUp(LocalBytes, Config.Node.Mem.Geo.RowBufferBytes);
  const RowMajorLayout Input(Lines, N, ElementBytes, 0);
  const BlockDynamicLayout Staging(Lines, N, ElementBytes, Stride,
                                   Rep.Plan.Staging.W, Rep.Plan.Staging.H);
  // (The later passes build their layouts per stack: a survivor hosting
  // migrated pencils streams hosted * Lines lines from the same bases.)
  const bool TwoLevel = Config.Placement == StackPlacement::TwoLevel;

  const StreamingKernel Kernel(N, Arch.Lanes, Arch.ClockMHz);
  const double Pace = Kernel.streamGBps();
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Node.Mem.Geo.RowBufferBytes);

  std::vector<SimStack> Stacks =
      buildStacks(Config, Trace, Metrics, TracePid);

  EventQueue XferEvents;
  Interconnect Net(XferEvents, Config);
  Net.setObservability(Trace, Metrics, TracePid + S);
  if (Trace)
    Trace->setProcessName(TracePid + S, "interconnect");
  std::unique_ptr<ClusterFaultInjector> CFaults;
  if (S > 1 && Config.Node.Mem.Faults &&
      Config.Node.Mem.Faults->hasClusterFaults())
    CFaults =
        std::make_unique<ClusterFaultInjector>(*Config.Node.Mem.Faults, S,
                                               2 * S);
  Net.setFaults(CFaults.get());
  SurvivorState State(S);

  // One redistribution: balanced all-to-all inside every \p Parts-sized
  // grid group, plus the per-stack egress/ingress memory phase. Under a
  // fault oracle the boundary runs the full checkpoint / detect /
  // migrate protocol (\p Wall is the compute barrier the fabric clock
  // advances to; the fault-free path ignores it).
  const auto runExchange = [&](unsigned Parts, bool GroupByRow,
                               const char *PhaseName, Picos Wall,
                               Picos &LinkOut, PhaseResult &MemSlowest,
                               Picos &MemOut) -> Picos {
    if (Parts <= 1)
      return 0;
    const std::uint64_t MsgBytes = LocalBytes / Parts;
    Picos Link = 0;
    if (!CFaults) {
      const Picos LinkStart = Net.lastDelivery();
      for (unsigned G = 0; G != S / Parts; ++G) {
        std::vector<unsigned> Group(Parts);
        for (unsigned I = 0; I != Parts; ++I)
          // Grid id = q * P1 + p: row groups share q (consecutive ids),
          // column groups share p (stride-P1 ids).
          Group[I] = GroupByRow ? G * Parts + I : G + I * (S / Parts);
        scheduleAllToAll(Net, Group, MsgBytes, Rep.Plan.EgressBurstBytes);
      }
      XferEvents.run();
      Link = Net.lastDelivery() - LinkStart;
    } else {
      std::vector<std::vector<unsigned>> Groups;
      for (unsigned G = 0; G != S / Parts; ++G) {
        std::vector<unsigned> Group(Parts);
        for (unsigned I = 0; I != Parts; ++I)
          Group[I] = GroupByRow ? G * Parts + I : G + I * (S / Parts);
        Groups.push_back(std::move(Group));
      }
      // With a dead stack the grouped schedule no longer tiles the
      // grid; the boundary degenerates to a full all-to-all among the
      // survivors (inside faultedExchange).
      Link = faultedExchange(Net, XferEvents, *CFaults, Config, State, Rep,
                             Wall, LocalBytes, Groups, MsgBytes,
                             Rep.Plan.EgressBurstBytes);
    }
    LinkOut += Link;

    Picos MemMax = 0;
    for (unsigned I = 0; I != S; ++I) {
      if (!State.Alive[I])
        continue;
      SimStack &St = Stacks[I];
      const std::uint64_t MyLines = Lines * State.Hosted[I];
      const BlockDynamicLayout MyStaging(MyLines, N, ElementBytes, Stride,
                                         Rep.Plan.Staging.W,
                                         Rep.Plan.Staging.H);
      const BlockDynamicLayout MyReceive(MyLines, N, ElementBytes,
                                         2 * Stride, Rep.Plan.Staging.W,
                                         Rep.Plan.Staging.H);
      const RowMajorLayout MyStagingFlat(MyLines, N, ElementBytes, Stride);
      const RowMajorLayout MyReceiveFlat(MyLines, N, ElementBytes,
                                         2 * Stride);
      std::unique_ptr<TraceSource> Egress, Ingress;
      if (TwoLevel) {
        Egress = std::make_unique<BlockTrace>(MyStaging,
                                              BlockOrder::RowMajorBlocks);
        Ingress = std::make_unique<ChunkedBlockWriteTrace>(MyReceive);
      } else {
        Egress = std::make_unique<ColScanTrace>(MyStagingFlat, ElementBytes);
        Ingress =
            std::make_unique<ColScanTrace>(MyReceiveFlat, ElementBytes);
      }
      St.Engine->setPhaseName(PhaseName);
      keepSlowest(
          St.Engine->run({Egress.get(), false, Arch.ReadWindow,
                          Config.LinkGBps, 0},
                         {Ingress.get(), true, Arch.WriteWindow,
                          Config.LinkGBps, Config.LinkLatencyPicos}),
          MemMax, MemSlowest);
    }
    MemOut += MemMax;
    return std::max(Link, MemMax);
  };

  // x-pass: unit-stride pencils in, blocks out.
  for (SimStack &St : Stacks) {
    RowScanTrace PRead(Input, RowBuf);
    ChunkedBlockWriteTrace PWrite(Staging);
    St.Engine->setPhaseName("x_phase");
    keepSlowest(St.Engine->run({&PRead, false, Arch.ReadWindow, Pace, 0},
                               {&PWrite, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.RowPhaseTime, Rep.RowPhase);
  }

  Rep.ExchangeTime = runExchange(P1, /*GroupByRow=*/true, "exchange",
                                 Rep.RowPhaseTime, Rep.LinkTime,
                                 Rep.ExchangeMem, Rep.ExchangeMemTime);

  // y-pass: block fetch of the re-pencilled data, blocks out.
  for (unsigned I = 0; I != S; ++I) {
    if (!State.Alive[I])
      continue;
    SimStack &St = Stacks[I];
    const std::uint64_t MyLines = Lines * State.Hosted[I];
    const BlockDynamicLayout MyReceive(MyLines, N, ElementBytes, 2 * Stride,
                                       Rep.Plan.Staging.W,
                                       Rep.Plan.Staging.H);
    const BlockDynamicLayout MyStaging(MyLines, N, ElementBytes, Stride,
                                       Rep.Plan.Staging.W,
                                       Rep.Plan.Staging.H);
    BlockTrace PRead(MyReceive, BlockOrder::ColMajorBlocks);
    ChunkedBlockWriteTrace PWrite(MyStaging);
    St.Engine->setPhaseName("y_phase");
    keepSlowest(St.Engine->run({&PRead, false, Arch.ReadWindow, Pace, 0},
                               {&PWrite, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.ColPhaseTime, Rep.ColPhase);
  }

  // The second boundary's wall clock: everything that has happened so
  // far, including the first boundary's protocol costs.
  Rep.Exchange2Time =
      runExchange(P2, /*GroupByRow=*/false, "exchange2",
                  Rep.RowPhaseTime + Rep.CheckpointTime + Rep.DetectionTime +
                      Rep.ExchangeTime + Rep.MigrationTime + Rep.ColPhaseTime,
                  Rep.LinkTime, Rep.ExchangeMem, Rep.ExchangeMemTime);

  // z-pass: whole blocks both ways.
  PhaseResult ZSlowest;
  for (unsigned I = 0; I != S; ++I) {
    if (!State.Alive[I])
      continue;
    SimStack &St = Stacks[I];
    const std::uint64_t MyLines = Lines * State.Hosted[I];
    const BlockDynamicLayout MyReceive(MyLines, N, ElementBytes, 2 * Stride,
                                       Rep.Plan.Staging.W,
                                       Rep.Plan.Staging.H);
    const BlockDynamicLayout MyOut(MyLines, N, ElementBytes, 3 * Stride,
                                   Rep.Plan.Staging.W, Rep.Plan.Staging.H);
    BlockTrace PRead(MyReceive, BlockOrder::ColMajorBlocks);
    BlockTrace PWrite(MyOut, BlockOrder::ColMajorBlocks);
    St.Engine->setPhaseName("z_phase");
    keepSlowest(St.Engine->run({&PRead, false, Arch.ReadWindow, Pace, 0},
                               {&PWrite, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.ZPhaseTime, ZSlowest);
  }

  Rep.TotalTime = Rep.RowPhaseTime + Rep.CheckpointTime +
                  Rep.DetectionTime + Rep.ExchangeTime + Rep.ColPhaseTime +
                  Rep.Exchange2Time + Rep.MigrationTime + Rep.ZPhaseTime;
  const std::uint64_t VolumeBytes = N * N * N * ElementBytes;
  Rep.AppThroughputGBps =
      bytesOverPicosToGBps(10 * VolumeBytes, Rep.TotalTime);
  Rep.XferMessages = Net.messages();
  Rep.XferBytes = Net.payloadBytes();
  Rep.Retransmits = Net.retransmittedPackets();
  Rep.BackoffTime = Net.backoffTime();
  Rep.XferFailed = Net.failedTransfers();
  if (CFaults)
    Rep.SurvivorStacks = static_cast<unsigned>(State.survivors().size());
  if (Metrics)
    Net.exportTo(*Metrics);
  return Rep;
}

Matrix ClusterFftProcessor::compute2d(const Matrix &In,
                                      const ClusterConfig &Config) {
  Config.validate();
  const std::uint64_t N = In.rows();
  if (In.cols() != N)
    reportFatalError("distributed 2D FFT requires a square matrix");
  const unsigned S = Config.Stacks;
  if (N % S != 0)
    reportFatalError("stack count must divide the problem size N");
  const std::uint64_t R = N / S;
  const std::uint64_t C = N / S;
  const AxisSplit Rows{N, S,
                       Config.Placement == StackPlacement::TwoLevel};
  const AxisSplit Cols = Rows;

  // Phase 1: each stack runs the row FFTs of the rows it owns into its
  // local slab store (local row index = the split's local coordinate).
  const Fft1d Plan(N);
  std::vector<Matrix> RowSlab(S, Matrix(R, N));
  std::vector<CplxF> Line;
  for (std::uint64_t Row = 0; Row != N; ++Row) {
    In.copyRow(Row, Line);
    Plan.forward(Line);
    RowSlab[Rows.owner(Row)].setRow(Rows.local(Row), Line);
  }

  // All-to-all: src packs, for every dst, the elements of its rows that
  // fall in dst's columns; dst unpacks them into its column store
  // (global row x local column). Pack and unpack iterate the same
  // (local row, dst column) order, so the flat buffer is a faithful
  // message payload.
  std::vector<Matrix> ColStore(S, Matrix(N, C));
  std::vector<CplxF> Payload;
  for (unsigned Src = 0; Src != S; ++Src)
    for (unsigned Dst = 0; Dst != S; ++Dst) {
      Payload.clear();
      for (std::uint64_t Lr = 0; Lr != R; ++Lr)
        for (std::uint64_t Lc = 0; Lc != C; ++Lc)
          Payload.push_back(
              RowSlab[Src].at(Lr, Cols.global(Dst, Lc)));
      std::uint64_t At = 0;
      for (std::uint64_t Lr = 0; Lr != R; ++Lr)
        for (std::uint64_t Lc = 0; Lc != C; ++Lc)
          ColStore[Dst].at(Rows.global(Src, Lr), Lc) = Payload[At++];
    }

  // Phase 2: each stack runs the column FFTs of its received columns.
  Matrix Out(N, N);
  std::vector<CplxF> Column;
  for (unsigned Dst = 0; Dst != S; ++Dst)
    for (std::uint64_t Lc = 0; Lc != C; ++Lc) {
      ColStore[Dst].copyCol(Lc, Column);
      Plan.forward(Column);
      Out.setCol(Cols.global(Dst, Lc), Column);
    }
  return Out;
}

std::vector<CplxF>
ClusterFftProcessor::compute3dReference(const std::vector<CplxF> &Vol,
                                        std::uint64_t N) {
  if (Vol.size() != N * N * N)
    reportFatalError("volume size does not match N^3");
  std::vector<CplxF> V = Vol;
  const Fft1d Plan(N);
  std::vector<CplxF> Line(N);
  const auto runPass = [&](auto Index) {
    for (std::uint64_t A = 0; A != N; ++A)
      for (std::uint64_t B = 0; B != N; ++B) {
        for (std::uint64_t I = 0; I != N; ++I)
          Line[I] = V[Index(A, B, I)];
        Plan.forward(Line);
        for (std::uint64_t I = 0; I != N; ++I)
          V[Index(A, B, I)] = Line[I];
      }
  };
  runPass([N](std::uint64_t Z, std::uint64_t Y, std::uint64_t X) {
    return (Z * N + Y) * N + X;
  });
  runPass([N](std::uint64_t Z, std::uint64_t X, std::uint64_t Y) {
    return (Z * N + Y) * N + X;
  });
  runPass([N](std::uint64_t Y, std::uint64_t X, std::uint64_t Z) {
    return (Z * N + Y) * N + X;
  });
  return V;
}

std::vector<CplxF>
ClusterFftProcessor::compute3d(const std::vector<CplxF> &Vol,
                               std::uint64_t N,
                               const ClusterConfig &Config) {
  if (Vol.size() != N * N * N)
    reportFatalError("volume size does not match N^3");
  const unsigned S = Config.Stacks;
  unsigned P1 = 1, P2 = 1;
  pencilGrid(S, P1, P2);
  if (N % P1 != 0 || N % P2 != 0)
    reportFatalError("pencil grid must divide the problem size N");
  const bool Contig = Config.Placement == StackPlacement::TwoLevel;
  // Grid coordinates of stack id: p = id % P1, q = id / P1.
  const AxisSplit A1{N, P1, Contig}; // y (stage 1) and x (stages 2, 3)
  const AxisSplit A2{N, P2, Contig}; // z (stages 1, 2) and y (stage 3)
  const std::uint64_t N1 = N / P1;
  const std::uint64_t N2 = N / P2;

  const Fft1d Plan(N);
  std::vector<CplxF> Line(N);

  // Stage 1: stack (p, q) owns x-pencils with y in A1's chunk p and z
  // in A2's chunk q, stored x-fastest: idx = (lz * N1 + ly) * N + x.
  std::vector<std::vector<CplxF>> S1(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  for (std::uint64_t Z = 0; Z != N; ++Z)
    for (std::uint64_t Y = 0; Y != N; ++Y) {
      const unsigned Owner = A2.owner(Z) * P1 + A1.owner(Y);
      const std::uint64_t Base =
          (A2.local(Z) * N1 + A1.local(Y)) * N;
      for (std::uint64_t X = 0; X != N; ++X)
        S1[Owner][Base + X] = Vol[(Z * N + Y) * N + X];
    }
  for (auto &Local : S1)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  // Redistribution 1, within grid rows (fixed q): x <-> y. Afterwards
  // stack (p, q) owns y-pencils with x in chunk p, z in chunk q, stored
  // y-fastest: idx = (lz * N1 + lx) * N + y.
  std::vector<std::vector<CplxF>> S2(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  std::vector<CplxF> Payload;
  for (unsigned Q = 0; Q != P2; ++Q)
    for (unsigned SrcP = 0; SrcP != P1; ++SrcP)
      for (unsigned DstP = 0; DstP != P1; ++DstP) {
        const unsigned Src = Q * P1 + SrcP;
        const unsigned Dst = Q * P1 + DstP;
        Payload.clear();
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Ly = 0; Ly != N1; ++Ly)
            for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
              Payload.push_back(
                  S1[Src][(Lz * N1 + Ly) * N + A1.global(DstP, Lx)]);
        std::uint64_t At = 0;
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Ly = 0; Ly != N1; ++Ly)
            for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
              S2[Dst][(Lz * N1 + Lx) * N + A1.global(SrcP, Ly)] =
                  Payload[At++];
      }
  for (auto &Local : S2)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  // Redistribution 2, within grid columns (fixed p): y <-> z.
  // Afterwards stack (p, q) owns z-pencils with x in chunk p, y in
  // chunk q, stored z-fastest: idx = (ly * N1 + lx) * N + z.
  std::vector<std::vector<CplxF>> S3(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  for (unsigned P = 0; P != P1; ++P)
    for (unsigned SrcQ = 0; SrcQ != P2; ++SrcQ)
      for (unsigned DstQ = 0; DstQ != P2; ++DstQ) {
        const unsigned Src = SrcQ * P1 + P;
        const unsigned Dst = DstQ * P1 + P;
        Payload.clear();
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
            for (std::uint64_t Ly = 0; Ly != N2; ++Ly)
              Payload.push_back(
                  S2[Src][(Lz * N1 + Lx) * N + A2.global(DstQ, Ly)]);
        std::uint64_t At = 0;
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
            for (std::uint64_t Ly = 0; Ly != N2; ++Ly)
              S3[Dst][(Ly * N1 + Lx) * N + A2.global(SrcQ, Lz)] =
                  Payload[At++];
      }
  for (auto &Local : S3)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  // Reassemble the x-fastest volume from the z-pencil stores.
  std::vector<CplxF> Result(N * N * N);
  for (std::uint64_t Y = 0; Y != N; ++Y)
    for (std::uint64_t X = 0; X != N; ++X) {
      const unsigned Owner = A2.owner(Y) * P1 + A1.owner(X);
      const std::uint64_t Base =
          (A2.local(Y) * N1 + A1.local(X)) * N;
      for (std::uint64_t Z = 0; Z != N; ++Z)
        Result[(Z * N + Y) * N + X] = S3[Owner][Base + Z];
    }
  return Result;
}

Matrix ClusterFftProcessor::compute2dWithStackLoss(const Matrix &In,
                                                   const ClusterConfig
                                                       &Config,
                                                   unsigned FailedStack) {
  Config.validate();
  const std::uint64_t N = In.rows();
  if (In.cols() != N)
    reportFatalError("distributed 2D FFT requires a square matrix");
  const unsigned S = Config.Stacks;
  if (S < 2)
    reportFatalError("cannot lose the only stack of a cluster");
  if (FailedStack >= S)
    reportFatalError("failed stack outside the cluster");
  if (N % S != 0)
    reportFatalError("stack count must divide the problem size N");
  const std::uint64_t R = N / S;
  const AxisSplit Rows{N, S,
                       Config.Placement == StackPlacement::TwoLevel};
  const AxisSplit Cols = Rows;

  // Phase 1 runs everywhere: the failure strikes at the redistribution
  // boundary, after the row FFTs.
  const Fft1d Plan(N);
  std::vector<Matrix> RowSlab(S, Matrix(R, N));
  std::vector<CplxF> Line;
  for (std::uint64_t Row = 0; Row != N; ++Row) {
    In.copyRow(Row, Line);
    Plan.forward(Line);
    RowSlab[Rows.owner(Row)].setRow(Rows.local(Row), Line);
  }

  // Redistribution-boundary checkpoint, then the failure: the dead
  // stack's slab survives only as the checkpoint copy - its own store
  // is emptied, so any read of post-mortem state would produce zeros
  // and break the bit-identity the tests pin.
  const Matrix Ckpt = std::move(RowSlab[FailedStack]);
  RowSlab[FailedStack] = Matrix();
  const auto SlabOf = [&](unsigned Src) -> const Matrix & {
    return Src == FailedStack ? Ckpt : RowSlab[Src];
  };

  // Survivor re-plan: the dead stack's columns rehome to its spare-map
  // survivor; every survivor owns its original columns plus any
  // migrated ones, listed in global order.
  std::vector<bool> Alive(S, true);
  Alive[FailedStack] = false;
  const unsigned Spare = spareVaultMap(Alive)[FailedStack];
  std::vector<std::vector<std::uint64_t>> Owned(S);
  for (std::uint64_t Col = 0; Col != N; ++Col) {
    const unsigned Original = Cols.owner(Col);
    Owned[Original == FailedStack ? Spare : Original].push_back(Col);
  }

  // Exchange: per-destination payloads as in compute2d, the dead
  // sender's tiles replayed from the checkpoint. Store[Dst] holds
  // Owned[Dst].size() columns of N, column-major.
  std::vector<std::vector<CplxF>> Store(S);
  for (unsigned I = 0; I != S; ++I)
    Store[I].resize(N * Owned[I].size());
  std::vector<CplxF> Payload;
  for (unsigned Src = 0; Src != S; ++Src) {
    const Matrix &Slab = SlabOf(Src);
    for (unsigned Dst = 0; Dst != S; ++Dst) {
      if (Owned[Dst].empty())
        continue;
      const std::uint64_t C = Owned[Dst].size();
      Payload.clear();
      for (std::uint64_t Lr = 0; Lr != R; ++Lr)
        for (std::uint64_t J = 0; J != C; ++J)
          Payload.push_back(Slab.at(Lr, Owned[Dst][J]));
      std::uint64_t At = 0;
      for (std::uint64_t Lr = 0; Lr != R; ++Lr)
        for (std::uint64_t J = 0; J != C; ++J)
          Store[Dst][J * N + Rows.global(Src, Lr)] = Payload[At++];
    }
  }

  // Phase 2 on the survivors: every column stream FFT'd where it now
  // lives. Same Fft1d plan on the same values as the host reference, so
  // the result is bit-identical whenever every element survived.
  Matrix Out(N, N);
  std::vector<CplxF> Column(N);
  for (unsigned Dst = 0; Dst != S; ++Dst)
    for (std::uint64_t J = 0; J != Owned[Dst].size(); ++J) {
      Column.assign(Store[Dst].begin() + J * N,
                    Store[Dst].begin() + (J + 1) * N);
      Plan.forward(Column);
      Out.setCol(Owned[Dst][J], Column);
    }
  return Out;
}

std::vector<CplxF> ClusterFftProcessor::compute3dWithStackLoss(
    const std::vector<CplxF> &Vol, std::uint64_t N,
    const ClusterConfig &Config, unsigned FailedStack) {
  if (Vol.size() != N * N * N)
    reportFatalError("volume size does not match N^3");
  const unsigned S = Config.Stacks;
  if (S < 2)
    reportFatalError("cannot lose the only stack of a cluster");
  if (FailedStack >= S)
    reportFatalError("failed stack outside the cluster");
  unsigned P1 = 1, P2 = 1;
  pencilGrid(S, P1, P2);
  if (N % P1 != 0 || N % P2 != 0)
    reportFatalError("pencil grid must divide the problem size N");
  const bool Contig = Config.Placement == StackPlacement::TwoLevel;
  const AxisSplit A1{N, P1, Contig};
  const AxisSplit A2{N, P2, Contig};
  const std::uint64_t N1 = N / P1;
  const std::uint64_t N2 = N / P2;

  const Fft1d Plan(N);
  std::vector<CplxF> Line(N);

  // Stage 1 (x-pass) runs everywhere, exactly as in compute3d.
  std::vector<std::vector<CplxF>> S1(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  for (std::uint64_t Z = 0; Z != N; ++Z)
    for (std::uint64_t Y = 0; Y != N; ++Y) {
      const unsigned Owner = A2.owner(Z) * P1 + A1.owner(Y);
      const std::uint64_t Base =
          (A2.local(Z) * N1 + A1.local(Y)) * N;
      for (std::uint64_t X = 0; X != N; ++X)
        S1[Owner][Base + X] = Vol[(Z * N + Y) * N + X];
    }
  for (auto &Local : S1)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  // The stack dies at the first redistribution boundary, right after
  // checkpointing its x-pencil store. From here on its logical grid
  // slot is hosted by the spare survivor; reads of the dead slot go
  // through the checkpoint, and its own store is emptied.
  const std::vector<CplxF> Ckpt = std::move(S1[FailedStack]);
  S1[FailedStack].clear();
  const auto S1Of = [&](unsigned Src) -> const std::vector<CplxF> & {
    return Src == FailedStack ? Ckpt : S1[Src];
  };

  // Redistribution 1, sourcing the dead slot from its checkpoint. The
  // logical pencil assignment is unchanged - the spare hosts the dead
  // slot's S2/S3 stores alongside its own - so every later stage sees
  // the same values as the fault-free run.
  std::vector<std::vector<CplxF>> S2(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  std::vector<CplxF> Payload;
  for (unsigned Q = 0; Q != P2; ++Q)
    for (unsigned SrcP = 0; SrcP != P1; ++SrcP)
      for (unsigned DstP = 0; DstP != P1; ++DstP) {
        const unsigned Src = Q * P1 + SrcP;
        const unsigned Dst = Q * P1 + DstP;
        const std::vector<CplxF> &From = S1Of(Src);
        Payload.clear();
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Ly = 0; Ly != N1; ++Ly)
            for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
              Payload.push_back(
                  From[(Lz * N1 + Ly) * N + A1.global(DstP, Lx)]);
        std::uint64_t At = 0;
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Ly = 0; Ly != N1; ++Ly)
            for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
              S2[Dst][(Lz * N1 + Lx) * N + A1.global(SrcP, Ly)] =
                  Payload[At++];
      }
  for (auto &Local : S2)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  // Redistribution 2 and the z-pass, unchanged from compute3d.
  std::vector<std::vector<CplxF>> S3(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  for (unsigned P = 0; P != P1; ++P)
    for (unsigned SrcQ = 0; SrcQ != P2; ++SrcQ)
      for (unsigned DstQ = 0; DstQ != P2; ++DstQ) {
        const unsigned Src = SrcQ * P1 + P;
        const unsigned Dst = DstQ * P1 + P;
        Payload.clear();
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
            for (std::uint64_t Ly = 0; Ly != N2; ++Ly)
              Payload.push_back(
                  S2[Src][(Lz * N1 + Lx) * N + A2.global(DstQ, Ly)]);
        std::uint64_t At = 0;
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
            for (std::uint64_t Ly = 0; Ly != N2; ++Ly)
              S3[Dst][(Ly * N1 + Lx) * N + A2.global(SrcQ, Lz)] =
                  Payload[At++];
      }
  for (auto &Local : S3)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  std::vector<CplxF> Result(N * N * N);
  for (std::uint64_t Y = 0; Y != N; ++Y)
    for (std::uint64_t X = 0; X != N; ++X) {
      const unsigned Owner = A2.owner(Y) * P1 + A1.owner(X);
      const std::uint64_t Base =
          (A2.local(Y) * N1 + A1.local(X)) * N;
      for (std::uint64_t Z = 0; Z != N; ++Z)
        Result[(Z * N + Y) * N + X] = S3[Owner][Base + Z];
    }
  return Result;
}
