//===- cluster/ClusterFftProcessor.cpp - Distributed 2D/3D FFT ------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterFftProcessor.h"

#include "fft/Fft1d.h"
#include "fft/StreamingKernel.h"
#include "layout/LinearLayouts.h"
#include "mem3d/Backend.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <memory>
#include <string>

using namespace fft3d;

namespace {

/// One simulated stack: backend, engine, and the obs wiring. The stacks
/// are simulated sequentially (each on its own engine and clock) and the
/// slowest bounds every phase, as a hardware barrier would.
struct SimStack {
  std::unique_ptr<StackBackend> Backend;
  std::unique_ptr<PhaseEngine> Engine;
};

std::vector<SimStack> buildStacks(const ClusterConfig &Config, Tracer *Trace,
                                  MetricsRegistry *Metrics,
                                  std::uint32_t TracePid) {
  std::vector<SimStack> Stacks(Config.Stacks);
  for (unsigned I = 0; I != Config.Stacks; ++I) {
    SimStack &S = Stacks[I];
    S.Backend = std::make_unique<StackBackend>(Config.Node.Mem,
                                               Config.Node.SimThreads, I);
    S.Engine = std::make_unique<PhaseEngine>(
        S.Backend->memory(), S.Backend->events(),
        Config.Node.MaxSimBytesPerDirection,
        Config.Node.MaxSimOpsPerDirection);
    S.Engine->setShardedEngine(&S.Backend->engine());
    const std::uint32_t Pid = TracePid + I;
    S.Backend->memory().setTracer(Trace, Pid);
    S.Engine->setObservability(Trace, Metrics, Pid);
    if (Trace)
      Trace->setProcessName(Pid, "stack " + std::to_string(I));
    if (Metrics)
      S.Engine->setMetricsLabels(
          MetricLabels{{"stack", std::to_string(I)}});
  }
  return Stacks;
}

/// Tracks the slowest stack's phase result.
void keepSlowest(const PhaseResult &Res, Picos &MaxTime,
                 PhaseResult &Slowest) {
  if (Res.EstimatedPhaseTime >= MaxTime) {
    MaxTime = Res.EstimatedPhaseTime;
    Slowest = Res;
  }
}

/// Canonical balanced all-to-all schedule over one group of stacks:
/// round r sends from every member to the member r steps ahead. A fixed
/// submission order keeps the FCFS fabric deterministic.
void scheduleAllToAll(Interconnect &Net, const std::vector<unsigned> &Group,
                      std::uint64_t Bytes, std::uint64_t GranuleBytes) {
  const unsigned G = static_cast<unsigned>(Group.size());
  for (unsigned Round = 1; Round < G; ++Round)
    for (unsigned I = 0; I != G; ++I)
      Net.send(Group[I], Group[(I + Round) % G], Bytes, GranuleBytes);
}

/// Slab/pencil ownership along one axis cut into \p Parts chunks of an
/// \p N-extent: contiguous chunks under TwoLevel, modulo dealing under
/// RoundRobin.
struct AxisSplit {
  std::uint64_t N = 0;
  unsigned Parts = 1;
  bool Contiguous = true;

  std::uint64_t chunk() const { return N / Parts; }
  unsigned owner(std::uint64_t I) const {
    return static_cast<unsigned>(Contiguous ? I / chunk() : I % Parts);
  }
  std::uint64_t local(std::uint64_t I) const {
    return Contiguous ? I % chunk() : I / Parts;
  }
  std::uint64_t global(unsigned Owner, std::uint64_t Local) const {
    return Contiguous ? Owner * chunk() + Local : Local * Parts + Owner;
  }
};

} // namespace

ClusterFftProcessor::ClusterFftProcessor(const ClusterConfig &Config)
    : Config(Config) {
  Config.validate();
}

void ClusterFftProcessor::pencilGrid(unsigned Stacks, unsigned &P1,
                                     unsigned &P2) {
  P1 = 1;
  while (P1 * P1 < Stacks)
    P1 *= 2;
  if (Stacks % P1 != 0)
    reportFatalError("pencil grid requires a power-of-two stack count");
  P2 = Stacks / P1;
}

ClusterReport ClusterFftProcessor::run2d() {
  const std::uint64_t N = Config.Node.N;
  const unsigned S = Config.Stacks;
  const std::uint64_t R = N / S;
  const std::uint64_t C = N / S;
  const ArchParams &Arch = Config.Node.Optimized;

  ClusterReport Rep;
  Rep.N = N;
  Rep.Stacks = S;
  Rep.Topology = Config.Topology;
  const ClusterLayoutPlanner Planner(Config.Node.Mem.Geo,
                                     Config.Node.Mem.Time, ElementBytes);
  Rep.Plan = Planner.plan(N, S, Arch.VaultsParallel, Config.Placement);

  // Four equal regions per stack: slab input, phase-1 staging, the
  // transpose's receive region, and phase-2 output.
  const std::uint64_t SlabBytes = R * N * ElementBytes;
  const std::uint64_t Stride =
      roundUp(SlabBytes, Config.Node.Mem.Geo.RowBufferBytes);
  const RowMajorLayout Input(R, N, ElementBytes, 0);
  const BlockDynamicLayout Staging(R, N, ElementBytes, Stride,
                                   Rep.Plan.Staging.W, Rep.Plan.Staging.H);
  const BlockDynamicLayout Receive(N, C, ElementBytes, 2 * Stride,
                                   Rep.Plan.Receive.W, Rep.Plan.Receive.H);
  const BlockDynamicLayout Out(N, C, ElementBytes, 3 * Stride,
                               Rep.Plan.Receive.W, Rep.Plan.Receive.H);
  // Flat views for the round-robin comparator's element scatter.
  const RowMajorLayout StagingFlat(R, N, ElementBytes, Stride);
  const RowMajorLayout ReceiveFlat(N, C, ElementBytes, 2 * Stride);
  const bool TwoLevel = Config.Placement == StackPlacement::TwoLevel;

  const StreamingKernel Kernel(N, Arch.Lanes, Arch.ClockMHz);
  const double Pace = Kernel.streamGBps();
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Node.Mem.Geo.RowBufferBytes);

  std::vector<SimStack> Stacks =
      buildStacks(Config, Trace, Metrics, TracePid);

  // Phase 1: every stack streams its slab's rows and writes blocks.
  for (SimStack &St : Stacks) {
    RowScanTrace P1Read(Input, RowBuf);
    ChunkedBlockWriteTrace P1Write(Staging);
    St.Engine->setPhaseName("row_phase");
    keepSlowest(St.Engine->run({&P1Read, false, Arch.ReadWindow, Pace, 0},
                               {&P1Write, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.RowPhaseTime, Rep.RowPhase);
  }

  // The all-to-all transpose: link traffic on the interconnect clock,
  // and on every stack a memory phase that reads the departing tiles
  // and lands the arriving ones, both paced at the link rate.
  EventQueue XferEvents;
  Interconnect Net(XferEvents, Config);
  Net.setObservability(Trace, Metrics, TracePid + S);
  if (Trace)
    Trace->setProcessName(TracePid + S, "interconnect");
  if (S > 1) {
    std::vector<unsigned> All(S);
    for (unsigned I = 0; I != S; ++I)
      All[I] = I;
    // The wire granule is the sender's contiguous run: two-level ships
    // whole staging blocks (full packets), round-robin single elements
    // (mostly framing).
    scheduleAllToAll(Net, All, Rep.Plan.PairBytes,
                     Rep.Plan.EgressBurstBytes);
    XferEvents.run();
    Rep.LinkTime = Net.lastDelivery();

    for (SimStack &St : Stacks) {
      std::unique_ptr<TraceSource> Egress, Ingress;
      if (TwoLevel) {
        Egress = std::make_unique<BlockTrace>(Staging,
                                              BlockOrder::RowMajorBlocks);
        Ingress = std::make_unique<ChunkedBlockWriteTrace>(Receive);
      } else {
        Egress = std::make_unique<ColScanTrace>(StagingFlat, ElementBytes);
        Ingress = std::make_unique<ColScanTrace>(ReceiveFlat, ElementBytes);
      }
      St.Engine->setPhaseName("exchange");
      keepSlowest(
          St.Engine->run({Egress.get(), false, Arch.ReadWindow,
                          Config.LinkGBps, 0},
                         {Ingress.get(), true, Arch.WriteWindow,
                          Config.LinkGBps, Config.LinkLatencyPicos}),
          Rep.ExchangeMemTime, Rep.ExchangeMem);
    }
  }
  Rep.ExchangeTime = std::max(Rep.LinkTime, Rep.ExchangeMemTime);

  // Phase 2: whole-block streams down the received block columns.
  for (SimStack &St : Stacks) {
    BlockTrace P2Read(Receive, BlockOrder::ColMajorBlocks);
    BlockTrace P2Write(Out, BlockOrder::ColMajorBlocks);
    St.Engine->setPhaseName("col_phase");
    keepSlowest(St.Engine->run({&P2Read, false, Arch.ReadWindow, Pace, 0},
                               {&P2Write, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.ColPhaseTime, Rep.ColPhase);
  }

  Rep.TotalTime = Rep.RowPhaseTime + Rep.ExchangeTime + Rep.ColPhaseTime;
  const std::uint64_t MatrixBytes = N * N * ElementBytes;
  Rep.AppThroughputGBps =
      bytesOverPicosToGBps(6 * MatrixBytes, Rep.TotalTime);
  Rep.XferMessages = Net.messages();
  Rep.XferBytes = Net.payloadBytes();
  if (Metrics)
    Net.exportTo(*Metrics);
  return Rep;
}

ClusterReport ClusterFftProcessor::run3d() {
  const std::uint64_t N = Config.Node.N;
  const unsigned S = Config.Stacks;
  unsigned P1 = 1, P2 = 1;
  pencilGrid(S, P1, P2);
  const ArchParams &Arch = Config.Node.Optimized;

  ClusterReport Rep;
  Rep.N = N;
  Rep.Stacks = S;
  Rep.Topology = Config.Topology;
  const ClusterLayoutPlanner Planner(Config.Node.Mem.Geo,
                                     Config.Node.Mem.Time, ElementBytes);
  Rep.Plan = Planner.plan(N, S, Arch.VaultsParallel, Config.Placement);

  // Each stack holds N^3/S elements: N^2/S pencils of N elements,
  // streamed as an (N^2/S) x N region. Same four-region scheme as 2D.
  const std::uint64_t Lines = N * N / S;
  const std::uint64_t LocalBytes = Lines * N * ElementBytes;
  const std::uint64_t Stride =
      roundUp(LocalBytes, Config.Node.Mem.Geo.RowBufferBytes);
  const RowMajorLayout Input(Lines, N, ElementBytes, 0);
  const BlockDynamicLayout Staging(Lines, N, ElementBytes, Stride,
                                   Rep.Plan.Staging.W, Rep.Plan.Staging.H);
  const BlockDynamicLayout Receive(Lines, N, ElementBytes, 2 * Stride,
                                   Rep.Plan.Staging.W, Rep.Plan.Staging.H);
  const BlockDynamicLayout Out(Lines, N, ElementBytes, 3 * Stride,
                               Rep.Plan.Staging.W, Rep.Plan.Staging.H);
  const RowMajorLayout StagingFlat(Lines, N, ElementBytes, Stride);
  const RowMajorLayout ReceiveFlat(Lines, N, ElementBytes, 2 * Stride);
  const bool TwoLevel = Config.Placement == StackPlacement::TwoLevel;

  const StreamingKernel Kernel(N, Arch.Lanes, Arch.ClockMHz);
  const double Pace = Kernel.streamGBps();
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Node.Mem.Geo.RowBufferBytes);

  std::vector<SimStack> Stacks =
      buildStacks(Config, Trace, Metrics, TracePid);

  EventQueue XferEvents;
  Interconnect Net(XferEvents, Config);
  Net.setObservability(Trace, Metrics, TracePid + S);
  if (Trace)
    Trace->setProcessName(TracePid + S, "interconnect");

  // One redistribution: balanced all-to-all inside every \p Parts-sized
  // grid group, plus the per-stack egress/ingress memory phase.
  const auto runExchange = [&](unsigned Parts, bool GroupByRow,
                               const char *PhaseName, Picos &LinkOut,
                               PhaseResult &MemSlowest,
                               Picos &MemOut) -> Picos {
    if (Parts <= 1)
      return 0;
    const std::uint64_t MsgBytes = LocalBytes / Parts;
    const Picos LinkStart = Net.lastDelivery();
    for (unsigned G = 0; G != S / Parts; ++G) {
      std::vector<unsigned> Group(Parts);
      for (unsigned I = 0; I != Parts; ++I)
        // Grid id = q * P1 + p: row groups share q (consecutive ids),
        // column groups share p (stride-P1 ids).
        Group[I] = GroupByRow ? G * Parts + I : G + I * (S / Parts);
      scheduleAllToAll(Net, Group, MsgBytes, Rep.Plan.EgressBurstBytes);
    }
    XferEvents.run();
    const Picos Link = Net.lastDelivery() - LinkStart;
    LinkOut += Link;

    Picos MemMax = 0;
    for (SimStack &St : Stacks) {
      std::unique_ptr<TraceSource> Egress, Ingress;
      if (TwoLevel) {
        Egress = std::make_unique<BlockTrace>(Staging,
                                              BlockOrder::RowMajorBlocks);
        Ingress = std::make_unique<ChunkedBlockWriteTrace>(Receive);
      } else {
        Egress = std::make_unique<ColScanTrace>(StagingFlat, ElementBytes);
        Ingress = std::make_unique<ColScanTrace>(ReceiveFlat, ElementBytes);
      }
      St.Engine->setPhaseName(PhaseName);
      keepSlowest(
          St.Engine->run({Egress.get(), false, Arch.ReadWindow,
                          Config.LinkGBps, 0},
                         {Ingress.get(), true, Arch.WriteWindow,
                          Config.LinkGBps, Config.LinkLatencyPicos}),
          MemMax, MemSlowest);
    }
    MemOut += MemMax;
    return std::max(Link, MemMax);
  };

  // x-pass: unit-stride pencils in, blocks out.
  for (SimStack &St : Stacks) {
    RowScanTrace PRead(Input, RowBuf);
    ChunkedBlockWriteTrace PWrite(Staging);
    St.Engine->setPhaseName("x_phase");
    keepSlowest(St.Engine->run({&PRead, false, Arch.ReadWindow, Pace, 0},
                               {&PWrite, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.RowPhaseTime, Rep.RowPhase);
  }

  Rep.ExchangeTime = runExchange(P1, /*GroupByRow=*/true, "exchange",
                                 Rep.LinkTime, Rep.ExchangeMem,
                                 Rep.ExchangeMemTime);

  // y-pass: block fetch of the re-pencilled data, blocks out.
  for (SimStack &St : Stacks) {
    BlockTrace PRead(Receive, BlockOrder::ColMajorBlocks);
    ChunkedBlockWriteTrace PWrite(Staging);
    St.Engine->setPhaseName("y_phase");
    keepSlowest(St.Engine->run({&PRead, false, Arch.ReadWindow, Pace, 0},
                               {&PWrite, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.ColPhaseTime, Rep.ColPhase);
  }

  Rep.Exchange2Time = runExchange(P2, /*GroupByRow=*/false, "exchange2",
                                  Rep.LinkTime, Rep.ExchangeMem,
                                  Rep.ExchangeMemTime);

  // z-pass: whole blocks both ways.
  PhaseResult ZSlowest;
  for (SimStack &St : Stacks) {
    BlockTrace PRead(Receive, BlockOrder::ColMajorBlocks);
    BlockTrace PWrite(Out, BlockOrder::ColMajorBlocks);
    St.Engine->setPhaseName("z_phase");
    keepSlowest(St.Engine->run({&PRead, false, Arch.ReadWindow, Pace, 0},
                               {&PWrite, true, Arch.WriteWindow, Pace,
                                Kernel.pipelineFillTime()}),
                Rep.ZPhaseTime, ZSlowest);
  }

  Rep.TotalTime = Rep.RowPhaseTime + Rep.ExchangeTime + Rep.ColPhaseTime +
                  Rep.Exchange2Time + Rep.ZPhaseTime;
  const std::uint64_t VolumeBytes = N * N * N * ElementBytes;
  Rep.AppThroughputGBps =
      bytesOverPicosToGBps(10 * VolumeBytes, Rep.TotalTime);
  Rep.XferMessages = Net.messages();
  Rep.XferBytes = Net.payloadBytes();
  if (Metrics)
    Net.exportTo(*Metrics);
  return Rep;
}

Matrix ClusterFftProcessor::compute2d(const Matrix &In,
                                      const ClusterConfig &Config) {
  Config.validate();
  const std::uint64_t N = In.rows();
  if (In.cols() != N)
    reportFatalError("distributed 2D FFT requires a square matrix");
  const unsigned S = Config.Stacks;
  if (N % S != 0)
    reportFatalError("stack count must divide the problem size N");
  const std::uint64_t R = N / S;
  const std::uint64_t C = N / S;
  const AxisSplit Rows{N, S,
                       Config.Placement == StackPlacement::TwoLevel};
  const AxisSplit Cols = Rows;

  // Phase 1: each stack runs the row FFTs of the rows it owns into its
  // local slab store (local row index = the split's local coordinate).
  const Fft1d Plan(N);
  std::vector<Matrix> RowSlab(S, Matrix(R, N));
  std::vector<CplxF> Line;
  for (std::uint64_t Row = 0; Row != N; ++Row) {
    In.copyRow(Row, Line);
    Plan.forward(Line);
    RowSlab[Rows.owner(Row)].setRow(Rows.local(Row), Line);
  }

  // All-to-all: src packs, for every dst, the elements of its rows that
  // fall in dst's columns; dst unpacks them into its column store
  // (global row x local column). Pack and unpack iterate the same
  // (local row, dst column) order, so the flat buffer is a faithful
  // message payload.
  std::vector<Matrix> ColStore(S, Matrix(N, C));
  std::vector<CplxF> Payload;
  for (unsigned Src = 0; Src != S; ++Src)
    for (unsigned Dst = 0; Dst != S; ++Dst) {
      Payload.clear();
      for (std::uint64_t Lr = 0; Lr != R; ++Lr)
        for (std::uint64_t Lc = 0; Lc != C; ++Lc)
          Payload.push_back(
              RowSlab[Src].at(Lr, Cols.global(Dst, Lc)));
      std::uint64_t At = 0;
      for (std::uint64_t Lr = 0; Lr != R; ++Lr)
        for (std::uint64_t Lc = 0; Lc != C; ++Lc)
          ColStore[Dst].at(Rows.global(Src, Lr), Lc) = Payload[At++];
    }

  // Phase 2: each stack runs the column FFTs of its received columns.
  Matrix Out(N, N);
  std::vector<CplxF> Column;
  for (unsigned Dst = 0; Dst != S; ++Dst)
    for (std::uint64_t Lc = 0; Lc != C; ++Lc) {
      ColStore[Dst].copyCol(Lc, Column);
      Plan.forward(Column);
      Out.setCol(Cols.global(Dst, Lc), Column);
    }
  return Out;
}

std::vector<CplxF>
ClusterFftProcessor::compute3dReference(const std::vector<CplxF> &Vol,
                                        std::uint64_t N) {
  if (Vol.size() != N * N * N)
    reportFatalError("volume size does not match N^3");
  std::vector<CplxF> V = Vol;
  const Fft1d Plan(N);
  std::vector<CplxF> Line(N);
  const auto runPass = [&](auto Index) {
    for (std::uint64_t A = 0; A != N; ++A)
      for (std::uint64_t B = 0; B != N; ++B) {
        for (std::uint64_t I = 0; I != N; ++I)
          Line[I] = V[Index(A, B, I)];
        Plan.forward(Line);
        for (std::uint64_t I = 0; I != N; ++I)
          V[Index(A, B, I)] = Line[I];
      }
  };
  runPass([N](std::uint64_t Z, std::uint64_t Y, std::uint64_t X) {
    return (Z * N + Y) * N + X;
  });
  runPass([N](std::uint64_t Z, std::uint64_t X, std::uint64_t Y) {
    return (Z * N + Y) * N + X;
  });
  runPass([N](std::uint64_t Y, std::uint64_t X, std::uint64_t Z) {
    return (Z * N + Y) * N + X;
  });
  return V;
}

std::vector<CplxF>
ClusterFftProcessor::compute3d(const std::vector<CplxF> &Vol,
                               std::uint64_t N,
                               const ClusterConfig &Config) {
  if (Vol.size() != N * N * N)
    reportFatalError("volume size does not match N^3");
  const unsigned S = Config.Stacks;
  unsigned P1 = 1, P2 = 1;
  pencilGrid(S, P1, P2);
  if (N % P1 != 0 || N % P2 != 0)
    reportFatalError("pencil grid must divide the problem size N");
  const bool Contig = Config.Placement == StackPlacement::TwoLevel;
  // Grid coordinates of stack id: p = id % P1, q = id / P1.
  const AxisSplit A1{N, P1, Contig}; // y (stage 1) and x (stages 2, 3)
  const AxisSplit A2{N, P2, Contig}; // z (stages 1, 2) and y (stage 3)
  const std::uint64_t N1 = N / P1;
  const std::uint64_t N2 = N / P2;

  const Fft1d Plan(N);
  std::vector<CplxF> Line(N);

  // Stage 1: stack (p, q) owns x-pencils with y in A1's chunk p and z
  // in A2's chunk q, stored x-fastest: idx = (lz * N1 + ly) * N + x.
  std::vector<std::vector<CplxF>> S1(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  for (std::uint64_t Z = 0; Z != N; ++Z)
    for (std::uint64_t Y = 0; Y != N; ++Y) {
      const unsigned Owner = A2.owner(Z) * P1 + A1.owner(Y);
      const std::uint64_t Base =
          (A2.local(Z) * N1 + A1.local(Y)) * N;
      for (std::uint64_t X = 0; X != N; ++X)
        S1[Owner][Base + X] = Vol[(Z * N + Y) * N + X];
    }
  for (auto &Local : S1)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  // Redistribution 1, within grid rows (fixed q): x <-> y. Afterwards
  // stack (p, q) owns y-pencils with x in chunk p, z in chunk q, stored
  // y-fastest: idx = (lz * N1 + lx) * N + y.
  std::vector<std::vector<CplxF>> S2(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  std::vector<CplxF> Payload;
  for (unsigned Q = 0; Q != P2; ++Q)
    for (unsigned SrcP = 0; SrcP != P1; ++SrcP)
      for (unsigned DstP = 0; DstP != P1; ++DstP) {
        const unsigned Src = Q * P1 + SrcP;
        const unsigned Dst = Q * P1 + DstP;
        Payload.clear();
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Ly = 0; Ly != N1; ++Ly)
            for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
              Payload.push_back(
                  S1[Src][(Lz * N1 + Ly) * N + A1.global(DstP, Lx)]);
        std::uint64_t At = 0;
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Ly = 0; Ly != N1; ++Ly)
            for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
              S2[Dst][(Lz * N1 + Lx) * N + A1.global(SrcP, Ly)] =
                  Payload[At++];
      }
  for (auto &Local : S2)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  // Redistribution 2, within grid columns (fixed p): y <-> z.
  // Afterwards stack (p, q) owns z-pencils with x in chunk p, y in
  // chunk q, stored z-fastest: idx = (ly * N1 + lx) * N + z.
  std::vector<std::vector<CplxF>> S3(S,
                                     std::vector<CplxF>(N1 * N2 * N));
  for (unsigned P = 0; P != P1; ++P)
    for (unsigned SrcQ = 0; SrcQ != P2; ++SrcQ)
      for (unsigned DstQ = 0; DstQ != P2; ++DstQ) {
        const unsigned Src = SrcQ * P1 + P;
        const unsigned Dst = DstQ * P1 + P;
        Payload.clear();
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
            for (std::uint64_t Ly = 0; Ly != N2; ++Ly)
              Payload.push_back(
                  S2[Src][(Lz * N1 + Lx) * N + A2.global(DstQ, Ly)]);
        std::uint64_t At = 0;
        for (std::uint64_t Lz = 0; Lz != N2; ++Lz)
          for (std::uint64_t Lx = 0; Lx != N1; ++Lx)
            for (std::uint64_t Ly = 0; Ly != N2; ++Ly)
              S3[Dst][(Ly * N1 + Lx) * N + A2.global(SrcQ, Lz)] =
                  Payload[At++];
      }
  for (auto &Local : S3)
    for (std::uint64_t L = 0; L != N1 * N2; ++L) {
      std::copy_n(Local.begin() + L * N, N, Line.begin());
      Plan.forward(Line);
      std::copy_n(Line.begin(), N, Local.begin() + L * N);
    }

  // Reassemble the x-fastest volume from the z-pencil stores.
  std::vector<CplxF> Result(N * N * N);
  for (std::uint64_t Y = 0; Y != N; ++Y)
    for (std::uint64_t X = 0; X != N; ++X) {
      const unsigned Owner = A2.owner(Y) * P1 + A1.owner(X);
      const std::uint64_t Base =
          (A2.local(Y) * N1 + A1.local(X)) * N;
      for (std::uint64_t Z = 0; Z != N; ++Z)
        Result[(Z * N + Y) * N + X] = S3[Owner][Base + Z];
    }
  return Result;
}
