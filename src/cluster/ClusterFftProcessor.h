//===- cluster/ClusterFftProcessor.h - Distributed 2D/3D FFT ----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distributed FFT application over S memory stacks:
///
///  - 2D, slab decomposition: stack i runs the row FFTs of rows
///    [i*N/S, (i+1)*N/S), the stacks exchange (N/S)^2 tiles in an
///    all-to-all transpose over the modeled interconnect, and stack i
///    then runs the column FFTs of columns [i*N/S, (i+1)*N/S).
///  - 3D, pencil decomposition: the stacks form a P1 x P2 grid; the
///    x-pass runs on x-pencils, a first redistribution (within grid
///    rows) re-pencils for the y-pass, and a second (within grid
///    columns) re-pencils for the z-pass - the FFTX/MPI schedule.
///
/// Like Fft2dProcessor, the class is two independent halves. The timed
/// half simulates each stack's memory phases on its own StackBackend and
/// the transpose traffic on the Interconnect, and reports phase times
/// with the exchange split into its link-limited and memory-limited
/// parts. The functional half routes real data through the slab/pencil
/// ownership, explicit per-pair message buffers, and the per-stack
/// column stores - every 1D transform runs the same Fft1d plan on the
/// same values as the host reference, so results are bit-identical to
/// Fft2d::forward (and the three-pass volume reference) for every S.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CLUSTER_CLUSTERFFTPROCESSOR_H
#define FFT3D_CLUSTER_CLUSTERFFTPROCESSOR_H

#include "cluster/ClusterConfig.h"
#include "cluster/ClusterLayoutPlanner.h"
#include "cluster/Interconnect.h"
#include "core/PhaseEngine.h"
#include "fft/Matrix.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Simulation report for one distributed run.
struct ClusterReport {
  std::uint64_t N = 0;
  unsigned Stacks = 1;
  ClusterTopology Topology = ClusterTopology::AllToAll;
  ClusterPlan Plan;
  /// Compute-phase durations: the slowest stack bounds each phase (the
  /// stacks run concurrently in hardware; the exchange barriers them).
  /// 2D uses RowPhaseTime / ColPhaseTime; 3D maps its x/y/z passes onto
  /// RowPhaseTime / ColPhaseTime / ZPhaseTime.
  Picos RowPhaseTime = 0;
  Picos ColPhaseTime = 0;
  Picos ZPhaseTime = 0;
  /// Exchange durations (3D has two; 2D leaves the second zero), each
  /// the max of its link-limited and memory-limited parts.
  Picos ExchangeTime = 0;
  Picos Exchange2Time = 0;
  /// The parts: interconnect delivery span vs the slowest stack's
  /// egress/ingress memory phase, summed over the run's exchanges.
  Picos LinkTime = 0;
  Picos ExchangeMemTime = 0;
  Picos TotalTime = 0;
  /// Slowest stack's phase measurements (row-buffer behaviour of the
  /// compute phases; the exchange's memory side).
  PhaseResult RowPhase;
  PhaseResult ColPhase;
  PhaseResult ExchangeMem;
  /// Aggregate problem throughput: total payload bytes of every phase
  /// over TotalTime.
  double AppThroughputGBps = 0.0;
  /// Interconnect totals for the run.
  std::uint64_t XferMessages = 0;
  std::uint64_t XferBytes = 0;
  /// Cluster fault tolerance (all zero on a fault-free run). Stacks
  /// that died or were partitioned off before an exchange, survivors
  /// that finished the run, and whether the survivor layouts were
  /// re-solved for migrated slabs.
  unsigned StacksFailed = 0;
  unsigned SurvivorStacks = 0;
  bool Replanned = false;
  /// Protocol costs: replicating every slab to its successor at the
  /// redistribution boundary, the missed-exchange probe that concludes
  /// a stack is dead (one full retransmit escalation), and the extra
  /// exchange traffic that rehomes the dead stacks' tiles.
  Picos CheckpointTime = 0;
  Picos DetectionTime = 0;
  Picos MigrationTime = 0;
  /// Loss-recovery totals from the interconnect.
  std::uint64_t Retransmits = 0;
  Picos BackoffTime = 0;
  std::uint64_t XferFailed = 0;
};

/// Runs distributed FFTs over a modeled multi-stack system.
class ClusterFftProcessor {
public:
  explicit ClusterFftProcessor(const ClusterConfig &Config);

  const ClusterConfig &config() const { return Config; }

  /// Attaches observability sinks for subsequent runs (either may be
  /// null). Stack i's device and phases land on trace pid
  /// \p TracePid + i; the interconnect on \p TracePid + Stacks. Metrics
  /// are labeled {stack=i} / cluster.*.
  void setObservability(Tracer *T, MetricsRegistry *M,
                        std::uint32_t TracePid = 0) {
    Trace = T;
    Metrics = M;
    this->TracePid = TracePid;
  }

  /// Simulates the distributed 2D FFT (slab decomposition).
  ClusterReport run2d();

  /// Simulates the distributed 3D FFT (pencil decomposition over a
  /// P1 x P2 stack grid, two redistributions).
  ClusterReport run3d();

  /// Splits \p Stacks into the pencil grid (P1, P2): P1 the largest
  /// power of two with P1 * P1 <= Stacks, P2 = Stacks / P1.
  static void pencilGrid(unsigned Stacks, unsigned &P1, unsigned &P2);

  /// Functional distributed 2D FFT of \p In: slab ownership, explicit
  /// per-pair exchange buffers, per-stack column FFTs. Bit-identical to
  /// Fft2d::forward for every stack count and placement.
  static Matrix compute2d(const Matrix &In, const ClusterConfig &Config);

  /// Functional distributed 3D FFT of the N^3 volume \p Vol (x fastest,
  /// index (z*N + y)*N + x), pencil decomposition with two
  /// redistributions. Bit-identical to compute3dReference.
  static std::vector<CplxF> compute3d(const std::vector<CplxF> &Vol,
                                      std::uint64_t N,
                                      const ClusterConfig &Config);

  /// Host reference: three straight passes of 1D FFTs over the volume.
  static std::vector<CplxF> compute3dReference(const std::vector<CplxF> &Vol,
                                               std::uint64_t N);

  /// Functional distributed 2D FFT surviving the loss of \p FailedStack
  /// right after the row phase: the failed stack's slab is recovered
  /// from its redistribution-boundary checkpoint (the stack's own store
  /// is dropped, so any post-mortem read would fail), its columns are
  /// rehomed onto the spare-map survivor, and the survivors run the
  /// column FFTs of everything they now own. Every element survives
  /// somewhere, so the result is bit-identical to Fft2d::forward - the
  /// acceptance property the fault tests pin at S in {2, 4, 8}.
  static Matrix compute2dWithStackLoss(const Matrix &In,
                                       const ClusterConfig &Config,
                                       unsigned FailedStack);

  /// Functional distributed 3D FFT surviving the loss of \p FailedStack
  /// at the first redistribution: the dead stack's x-pencil store is
  /// recovered from checkpoint and its logical grid slot is hosted by
  /// the spare survivor through the remaining passes. Bit-identical to
  /// compute3dReference.
  static std::vector<CplxF>
  compute3dWithStackLoss(const std::vector<CplxF> &Vol, std::uint64_t N,
                         const ClusterConfig &Config, unsigned FailedStack);

private:
  ClusterConfig Config;
  Tracer *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;
  std::uint32_t TracePid = 0;
};

} // namespace fft3d

#endif // FFT3D_CLUSTER_CLUSTERFFTPROCESSOR_H
