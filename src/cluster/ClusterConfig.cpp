//===- cluster/ClusterConfig.cpp - Multi-stack system description ---------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterConfig.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace fft3d;

const char *fft3d::clusterTopologyName(ClusterTopology Topology) {
  switch (Topology) {
  case ClusterTopology::AllToAll:
    return "all-to-all";
  case ClusterTopology::Ring:
    return "ring";
  }
  fft3d_unreachable("unknown ClusterTopology");
}

const char *fft3d::stackPlacementName(StackPlacement Placement) {
  switch (Placement) {
  case StackPlacement::TwoLevel:
    return "two-level";
  case StackPlacement::RoundRobin:
    return "round-robin";
  }
  fft3d_unreachable("unknown StackPlacement");
}

Picos ClusterConfig::retransmitBackoff(unsigned Round) const {
  Picos Backoff = RetransmitBackoffInit;
  for (unsigned K = 1; K < Round; ++K) {
    if (Backoff >= RetransmitBackoffMax / RetransmitBackoffFactor)
      return RetransmitBackoffMax;
    Backoff *= RetransmitBackoffFactor;
  }
  return std::min(Backoff, RetransmitBackoffMax);
}

ClusterConfig ClusterConfig::forProblemSize(std::uint64_t N,
                                            unsigned Stacks) {
  ClusterConfig Config;
  Config.Stacks = Stacks;
  Config.Node = SystemConfig::forProblemSize(N);
  Config.validate();
  return Config;
}

void ClusterConfig::validate() const {
  if (Stacks == 0)
    reportFatalError("cluster needs at least one stack");
  if (Node.N % Stacks != 0)
    reportFatalError("stack count must divide the problem size N");
  if (Node.N / Stacks == 0)
    reportFatalError("more stacks than matrix rows");
  if (LinkGBps <= 0.0)
    reportFatalError("link bandwidth must be positive");
  if (PacketBytes == 0)
    reportFatalError("interconnect packet size must be positive");
  if (RetransmitTimeoutPicos == 0)
    reportFatalError("retransmit timeout must be positive");
  if (RetransmitBackoffFactor < 2)
    reportFatalError("retransmit backoff factor must be at least 2");
  if (RetransmitBackoffInit == 0 ||
      RetransmitBackoffMax < RetransmitBackoffInit)
    reportFatalError("retransmit backoff bounds are inverted");
  Node.validate();
}
