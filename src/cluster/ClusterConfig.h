//===- cluster/ClusterConfig.h - Multi-stack system description -*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of a multi-stack system: S identical 3D-memory stacks
/// (each a full SystemConfig worth of device + kernel) joined by a
/// modeled interconnect. Stacks = 1 with the default interconnect is the
/// single-stack system, byte-identical to a plain SystemConfig run.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CLUSTER_CLUSTERCONFIG_H
#define FFT3D_CLUSTER_CLUSTERCONFIG_H

#include "core/SystemConfig.h"
#include "support/Units.h"

#include <cstdint>

namespace fft3d {

/// How the stacks are wired together.
enum class ClusterTopology {
  /// Every stack has a dedicated full-bandwidth port to every other
  /// (a crossbar / full electrical mesh): one hop, contention only at
  /// each stack's own egress and ingress ports.
  AllToAll,
  /// A bidirectional ring: messages hop store-and-forward along the
  /// shorter direction, contending for each physical link they cross.
  Ring,
};

const char *clusterTopologyName(ClusterTopology Topology);

/// How matrix rows / pencils are assigned to stacks.
enum class StackPlacement {
  /// The two-level generalization of Eq. 1: contiguous slabs per stack,
  /// per-stack block layout re-planned for the slab's column-stream
  /// count, so the all-to-all lands whole blocks on each receiver.
  TwoLevel,
  /// Naive comparator: rows and columns dealt round-robin across
  /// stacks, element-granular exchange traffic.
  RoundRobin,
};

const char *stackPlacementName(StackPlacement Placement);

/// Full description of a multi-stack system.
struct ClusterConfig {
  /// Number of memory stacks (S). Must divide the problem size N.
  unsigned Stacks = 1;
  ClusterTopology Topology = ClusterTopology::AllToAll;
  StackPlacement Placement = StackPlacement::TwoLevel;
  /// Per-link, per-direction bandwidth in GB/s (one serial transceiver
  /// bundle between two stacks, or one ring segment direction).
  double LinkGBps = 32.0;
  /// Per-hop propagation + serialization-start latency.
  Picos LinkLatencyPicos = 200 * PicosPerNano;
  /// Interconnect packet granularity: messages are chunked into packets
  /// of at most this many bytes, which is also the store-and-forward
  /// unit on multi-hop paths. Senders without a gather engine cannot
  /// fill a packet beyond their layout's contiguous run, so the
  /// effective packet size of a transfer is min(PacketBytes, the
  /// sender's egress burst).
  std::uint64_t PacketBytes = 4096;
  /// Per-packet framing overhead (header + CRC + credit flits) that
  /// occupies the wire alongside the payload. This is what makes
  /// element-granular exchanges expensive: an 8-byte payload behind a
  /// 32-byte header uses 20% of the link, a 4 KiB packet over 99%.
  std::uint64_t PacketHeaderBytes = 32;
  /// Ack timeout: how long past a transmission's end the sender waits
  /// before declaring its unacked packets lost and retransmitting.
  Picos RetransmitTimeoutPicos = 2 * PicosPerMicro;
  /// Retransmission rounds allowed per message before the transfer is
  /// declared failed (0 = no retransmission: first loss is fatal).
  unsigned RetransmitBudget = 5;
  /// Backoff before retransmission round k (k >= 1): min(Init *
  /// Factor^(k-1), Max) - capped exponential, mirroring the serving
  /// layer's RetryPolicy.
  Picos RetransmitBackoffInit = PicosPerMicro;
  unsigned RetransmitBackoffFactor = 2;
  Picos RetransmitBackoffMax = 16 * PicosPerMicro;
  /// The per-stack system (device geometry/timing, kernel, sim budget).
  /// Node.N is the *global* problem size; each stack holds N / Stacks
  /// rows (2D) or pencils (3D).
  SystemConfig Node;

  /// Backoff before retransmission round \p Round (1-based): capped
  /// exponential over the three knobs above.
  Picos retransmitBackoff(unsigned Round) const;

  /// Calibrated default cluster for a global N x N problem on \p Stacks
  /// stacks.
  static ClusterConfig forProblemSize(std::uint64_t N, unsigned Stacks);

  /// Sanity-checks the combination (divisibility, link rate). Aborts on
  /// nonsense, like SystemConfig::validate.
  void validate() const;
};

} // namespace fft3d

#endif // FFT3D_CLUSTER_CLUSTERCONFIG_H
