//===- cluster/StackDispatch.cpp - Per-stack dispatch endpoints -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "cluster/StackDispatch.h"

#include "support/ErrorHandling.h"

using namespace fft3d;

StackDispatchSet::StackDispatchSet(unsigned NumStacks) {
  if (NumStacks == 0)
    reportFatalError("a dispatch set needs at least one stack");
  Endpoints.resize(NumStacks);
  for (unsigned S = 0; S != NumStacks; ++S)
    Endpoints[S].Stack = S;
}

StackHealthDelta StackDispatchSet::refreshHealth(
    const StackHealthSource *Health, Picos Now) {
  StackHealthDelta Delta;
  for (StackEndpoint &E : Endpoints) {
    const bool Usable = Health ? Health->stackUsable(E.Stack, Now) : true;
    if (Health)
      E.HealthEpoch = Health->stackHealthEpoch(E.Stack, Now);
    if (Usable == E.Online)
      continue;
    E.Online = Usable;
    (Usable ? Delta.CameOnline : Delta.WentOffline).push_back(E.Stack);
  }
  return Delta;
}

unsigned StackDispatchSet::routableCount() const {
  unsigned Count = 0;
  for (const StackEndpoint &E : Endpoints)
    Count += E.routable() ? 1 : 0;
  return Count;
}

Picos StackDispatchSet::routableBacklog() const {
  Picos Total = 0;
  for (const StackEndpoint &E : Endpoints)
    if (E.routable())
      Total += E.Backlog;
  return Total;
}
