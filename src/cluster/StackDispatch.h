//===- cluster/StackDispatch.h - Per-stack dispatch endpoints ---*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dispatch seam between a fleet front-end and the S stacks of a
/// cluster: one StackEndpoint per stack carrying exactly the state a
/// router needs (routability, outstanding work, queue depth, health
/// epoch), plus a StackDispatchSet that keeps the endpoints in sync with
/// a health feed.
///
/// Health flows in through the StackHealthSource interface rather than a
/// concrete monitor type so this layer stays below serve/: the serving
/// tier's HealthMonitor implements the interface, tests implement it
/// with scripted timelines. refreshHealth() reports edge transitions
/// (a stack going offline / coming back) so the caller can drain queues
/// and invalidate health-epoch-keyed cache entries exactly once per
/// transition instead of polling state.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CLUSTER_STACKDISPATCH_H
#define FFT3D_CLUSTER_STACKDISPATCH_H

#include "support/Units.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Abstract per-stack health feed. Implementations must be deterministic
/// pure functions of (their configuration, Stack, Now).
class StackHealthSource {
public:
  virtual ~StackHealthSource() = default;

  /// True when \p Stack can accept dispatches at \p Now.
  virtual bool stackUsable(unsigned Stack, Picos Now) const = 0;

  /// Monotone health-change counter for \p Stack at \p Now (0 = never
  /// changed). Plans and estimates derived from the stack's health are
  /// cached keyed by this epoch.
  virtual std::uint64_t stackHealthEpoch(unsigned Stack,
                                         Picos Now) const = 0;
};

/// The router-visible state of one stack.
struct StackEndpoint {
  unsigned Stack = 0;
  /// Health feed said the stack is usable at the last refresh.
  bool Online = true;
  /// Autoscaler membership: inactive stacks finish their work but take
  /// no new routes.
  bool Active = true;
  /// Health epoch at the last refresh (keys plan-cache entries).
  std::uint64_t HealthEpoch = 0;
  /// Estimated outstanding work (queued + running service estimates).
  Picos Backlog = 0;
  /// Jobs waiting in the stack's pending queue.
  unsigned QueueDepth = 0;
  /// Jobs currently executing on the stack.
  unsigned Running = 0;
  /// Cumulative accounting for reports and tests.
  std::uint64_t RoutedJobs = 0;
  std::uint64_t CompletedJobs = 0;
  /// Jobs pulled back out of this stack's queue (drain on failure or
  /// scale-down) and re-routed elsewhere.
  std::uint64_t DrainedJobs = 0;

  /// A stack the router may pick: in the active set and healthy.
  bool routable() const { return Online && Active; }
};

/// Health transitions observed by one refreshHealth() call.
struct StackHealthDelta {
  /// Stacks whose Online flag flipped true -> false (drain these).
  std::vector<unsigned> WentOffline;
  /// Stacks whose Online flag flipped false -> true.
  std::vector<unsigned> CameOnline;

  bool empty() const { return WentOffline.empty() && CameOnline.empty(); }
};

/// Owns the endpoint array for an S-stack fleet.
class StackDispatchSet {
public:
  explicit StackDispatchSet(unsigned NumStacks);

  unsigned numStacks() const {
    return static_cast<unsigned>(Endpoints.size());
  }

  StackEndpoint &endpoint(unsigned Stack) { return Endpoints[Stack]; }
  const StackEndpoint &endpoint(unsigned Stack) const {
    return Endpoints[Stack];
  }
  const std::vector<StackEndpoint> &endpoints() const { return Endpoints; }

  /// Re-reads \p Health (null = always healthy) for every stack at
  /// \p Now, updating Online flags and health epochs, and returns the
  /// edge transitions since the previous refresh in stack order.
  StackHealthDelta refreshHealth(const StackHealthSource *Health,
                                 Picos Now);

  /// Number of endpoints with routable() true.
  unsigned routableCount() const;

  /// Sum of endpoint backlogs over routable stacks.
  Picos routableBacklog() const;

private:
  std::vector<StackEndpoint> Endpoints;
};

} // namespace fft3d

#endif // FFT3D_CLUSTER_STACKDISPATCH_H
