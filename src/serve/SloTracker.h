//===- serve/SloTracker.h - Per-policy latency/SLO accounting ---*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records every job outcome (completion or shed) during a serving run
/// and reduces them to the quantities a capacity planner compares across
/// policies: throughput, exact p50/p95/p99 of queueing and end-to-end
/// latency, deadline-miss rate and shed rate. Percentiles use the
/// nearest-rank definition over the exact sample set (the runs are a few
/// hundred to a few thousand jobs - no need for the bucketed Histogram),
/// so results are deterministic and unit-testable.
///
/// A shed job counts as a deadline miss when it carried a deadline: from
/// the tenant's point of view rejection and lateness are both SLO
/// violations.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_SLOTRACKER_H
#define FFT3D_SERVE_SLOTRACKER_H

#include "obs/Metrics.h"
#include "serve/AdmissionController.h"
#include "serve/JobRequest.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fft3d {

/// One finished job with its lifecycle timestamps.
struct JobOutcome {
  JobRequest Job;
  /// When the scheduler launched it.
  Picos DispatchTime = 0;
  /// When it finished.
  Picos CompleteTime = 0;
  /// Vault share it ran on.
  unsigned Vaults = 0;
  /// Completed while the device was degraded (vaults offline or
  /// throttled at dispatch).
  bool Degraded = false;

  Picos queueingDelay() const { return DispatchTime - Job.Arrival; }
  Picos serviceTime() const { return CompleteTime - DispatchTime; }
  Picos totalLatency() const { return CompleteTime - Job.Arrival; }
  bool missedDeadline() const {
    return Job.hasDeadline() && CompleteTime > Job.Deadline;
  }
};

/// Aggregated run summary (times in milliseconds where not stated).
struct SloSummary {
  std::uint64_t Offered = 0;
  std::uint64_t Completed = 0;
  std::uint64_t Shed = 0;
  /// False when no job completed: the latency/throughput fields below
  /// are then meaningless placeholders (0.0), NOT measurements. Anything
  /// consuming a summary as a control signal (autoscalers, brownout)
  /// must check this instead of reading "p99 = 0 ms" off a cold start.
  bool HasLatencyStats = false;
  /// Completed jobs per second over the run's makespan.
  double ThroughputJobsPerSec = 0.0;
  double P50LatencyMs = 0.0;
  double P95LatencyMs = 0.0;
  double P99LatencyMs = 0.0;
  double P50QueueMs = 0.0;
  double P99QueueMs = 0.0;
  double MeanServiceMs = 0.0;
  /// (late completions + shed jobs with deadlines) / jobs with deadlines.
  double DeadlineMissRate = 0.0;
  double ShedRate = 0.0;
  /// Fault accounting (all zero on a fault-free run).
  std::uint64_t Retries = 0;
  /// Jobs dropped after exhausting transient-fault retries.
  std::uint64_t FailedDropped = 0;
  /// Arrivals shed by brownout mode.
  std::uint64_t BrownoutSheds = 0;
  /// Completions dispatched on a degraded device.
  std::uint64_t DegradedCompletions = 0;
  /// Conv2d SLO class: the convolution jobs broken out of the aggregate
  /// (they run three transforms per frame behind a pointwise barrier, so
  /// their latency profile differs from the plain FFT classes'). All
  /// zero when the workload carried no conv2d jobs; ConvP99LatencyMs is
  /// meaningful only when ConvCompleted != 0.
  std::uint64_t ConvOffered = 0;
  std::uint64_t ConvCompleted = 0;
  double ConvP99LatencyMs = 0.0;
  double ConvDeadlineMissRate = 0.0;
};

/// Collects outcomes for one (policy, workload) run.
class SloTracker {
public:
  void recordCompletion(const JobOutcome &Outcome);
  void recordShed(const JobRequest &Job, AdmissionDecision Why);
  /// One transient-fault retry was scheduled for \p Job.
  void recordRetry(const JobRequest &Job);

  const std::vector<JobOutcome> &completions() const { return Outcomes; }
  std::uint64_t completed() const { return Outcomes.size(); }
  std::uint64_t shed() const { return ShedJobs.size(); }
  std::uint64_t retries() const { return NumRetries; }

  /// Nearest-rank percentile of \p Samples (need not be sorted):
  /// the smallest sample S such that at least Fraction of samples <= S.
  /// \p Fraction in (0, 1]; returns 0 for an empty set.
  static double percentile(std::vector<double> Samples, double Fraction);

  /// Reduces the recorded outcomes. \p End is the run's end time (last
  /// event); throughput is completions over (End - first arrival).
  SloSummary summarize(Picos End) const;

  /// Adds this run's summary into \p Registry under "serve.*", labeled
  /// policy=\p Policy. Call once per run (counters add). Also feeds an
  /// end-to-end latency histogram "serve.latency_ms" (1 ms buckets)
  /// whose nearest-rank percentiles agree with the exact-sample
  /// percentiles above to bucket granularity.
  void exportTo(MetricsRegistry &Registry, const std::string &Policy,
                Picos End) const;

  void reset();

private:
  std::vector<JobOutcome> Outcomes;
  std::vector<JobRequest> ShedJobs;
  /// Why ShedJobs[i] was shed (parallel to ShedJobs).
  std::vector<AdmissionDecision> ShedReasons;
  std::uint64_t NumRetries = 0;
};

} // namespace fft3d

#endif // FFT3D_SERVE_SLOTRACKER_H
