//===- serve/AdmissionController.h - Load shedding at the door --*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides at arrival time whether a request enters the pending queue.
/// Two shedding rules, both cheap enough to run per arrival:
///
///  - queue-full: the bounded queue is the backpressure signal; once it
///    is full every new arrival is shed rather than growing an unbounded
///    backlog (open-loop overload otherwise diverges);
///  - infeasible-deadline (optional): if the backlog already guarantees
///    the job will miss its deadline, shed it now - the tenant learns
///    immediately instead of burning a machine slot on a doomed request.
///
/// The controller only decides; the simulator routes shed jobs to the
/// SloTracker and (for closed-loop tenants) back to the workload.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_ADMISSIONCONTROLLER_H
#define FFT3D_SERVE_ADMISSIONCONTROLLER_H

#include "serve/JobQueue.h"
#include "serve/JobRequest.h"

#include <cstdint>

namespace fft3d {

/// Outcome of an admission decision.
enum class AdmissionDecision {
  Admit,
  /// Shed: the bounded queue is full.
  ShedQueueFull,
  /// Shed: backlog + service time already exceeds the job's deadline.
  ShedInfeasible,
  /// Shed: brownout mode is shedding low-priority arrivals.
  ShedBrownout,
  /// Dropped by the serving loop after exhausting transient-fault
  /// retries (not an arrival-time decision).
  ShedFailed,
};

const char *admissionDecisionName(AdmissionDecision D);

/// Per-arrival admission control with running counters.
class AdmissionController {
public:
  /// \p ShedInfeasible enables the deadline-feasibility rule.
  explicit AdmissionController(bool ShedInfeasible = false)
      : ShedInfeasibleEnabled(ShedInfeasible) {}

  /// Decides \p Job's fate. \p Backlog is the estimated time until the
  /// machine could start this job (running remainder + queued service);
  /// \p EstService its estimated service time on the full machine.
  AdmissionDecision decide(const JobRequest &Job, const JobQueue &Queue,
                           Picos Now, Picos Backlog, Picos EstService);

  /// Enters/leaves brownout: while active, arrivals with Priority >=
  /// \p PriorityFloor are shed before any other rule runs. The serving
  /// loop drives this from its SLO-miss window.
  void setBrownout(bool Active, unsigned PriorityFloor);
  bool inBrownout() const { return BrownoutActive; }

  std::uint64_t admitted() const { return NumAdmitted; }
  std::uint64_t shedQueueFull() const { return NumShedFull; }
  std::uint64_t shedInfeasible() const { return NumShedInfeasible; }
  std::uint64_t shedBrownout() const { return NumShedBrownout; }
  std::uint64_t shedTotal() const {
    return NumShedFull + NumShedInfeasible + NumShedBrownout;
  }

  void reset();

private:
  bool ShedInfeasibleEnabled;
  bool BrownoutActive = false;
  unsigned BrownoutPriorityFloor = 0;
  std::uint64_t NumAdmitted = 0;
  std::uint64_t NumShedFull = 0;
  std::uint64_t NumShedInfeasible = 0;
  std::uint64_t NumShedBrownout = 0;
};

} // namespace fft3d

#endif // FFT3D_SERVE_ADMISSIONCONTROLLER_H
