//===- serve/JobRequest.cpp - One tenant's 2D FFT request -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/JobRequest.h"

using namespace fft3d;

const char *fft3d::jobPrecisionName(JobPrecision P) {
  switch (P) {
  case JobPrecision::Fp32:
    return "fp32";
  case JobPrecision::Fp16:
    return "fp16";
  }
  return "?";
}

const char *fft3d::jobKindName(JobKind K) {
  switch (K) {
  case JobKind::Fft2d:
    return "fft2d";
  case JobKind::Conv2d:
    return "conv2d";
  }
  return "?";
}

const char *fft3d::jobInputName(JobInput I) {
  switch (I) {
  case JobInput::Complex:
    return "complex";
  case JobInput::Real:
    return "real";
  }
  return "?";
}
