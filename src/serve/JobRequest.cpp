//===- serve/JobRequest.cpp - One tenant's 2D FFT request -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/JobRequest.h"

using namespace fft3d;

const char *fft3d::jobPrecisionName(JobPrecision P) {
  switch (P) {
  case JobPrecision::Fp32:
    return "fp32";
  case JobPrecision::Fp16:
    return "fp16";
  }
  return "?";
}
