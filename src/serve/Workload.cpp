//===- serve/Workload.cpp - Synthetic request generators ------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/Workload.h"

#include "support/ErrorHandling.h"

#include <cmath>

using namespace fft3d;

std::vector<JobTemplate> fft3d::mixedWorkloadTemplates() {
  // Urgent interactive 2048^2 singles vs heavyweight 4096^2 batches: the
  // head-of-line-blocking mix where policy choice matters most. Both
  // carry deadlines so miss rates are comparable across classes.
  return {
      {2048, 1, JobPrecision::Fp32, /*Priority=*/0, /*Weight=*/3.0,
       /*DeadlineSlack=*/8.0},
      {2048, 1, JobPrecision::Fp16, /*Priority=*/1, /*Weight=*/1.0,
       /*DeadlineSlack=*/8.0},
      {4096, 1, JobPrecision::Fp32, /*Priority=*/2, /*Weight=*/1.5,
       /*DeadlineSlack=*/6.0},
      {4096, 2, JobPrecision::Fp32, /*Priority=*/2, /*Weight=*/0.5,
       /*DeadlineSlack=*/6.0},
  };
}

namespace {

/// Weighted template draw.
const JobTemplate &drawTemplate(const std::vector<JobTemplate> &Mix,
                                Rng &Random) {
  if (Mix.empty())
    reportFatalError("workload mix must not be empty");
  double Total = 0.0;
  for (const JobTemplate &T : Mix) {
    if (T.Weight <= 0.0)
      reportFatalError("workload template weight must be positive");
    Total += T.Weight;
  }
  double Pick = Random.nextDouble() * Total;
  for (const JobTemplate &T : Mix) {
    Pick -= T.Weight;
    if (Pick < 0.0)
      return T;
  }
  return Mix.back();
}

/// Exponential draw with the given mean (picoseconds).
Picos exponential(Rng &Random, double MeanPicos) {
  // Clamp the uniform away from 1.0 so log() stays finite.
  const double U = std::min(Random.nextDouble(), 0.999999999);
  return static_cast<Picos>(-MeanPicos * std::log(1.0 - U));
}

JobRequest instantiate(const JobTemplate &T, std::uint64_t Id, Picos Arrival,
                       const ServiceModel &Model) {
  JobRequest Job;
  Job.Id = Id;
  Job.N = T.N;
  Job.Frames = T.Frames;
  Job.Precision = T.Precision;
  Job.Priority = T.Priority;
  Job.Arrival = Arrival;
  if (T.DeadlineSlack > 0.0) {
    const Picos Est = Model.fullMachineServiceTime(Job);
    Job.Deadline = Arrival + static_cast<Picos>(
                                 T.DeadlineSlack * static_cast<double>(Est));
  }
  return Job;
}

} // namespace

std::vector<JobRequest>
fft3d::generatePoissonTrace(const std::vector<JobTemplate> &Mix,
                            unsigned NumJobs, double RatePerSec,
                            std::uint64_t Seed, const ServiceModel &Model) {
  if (RatePerSec <= 0.0)
    reportFatalError("arrival rate must be positive");
  Rng Random(Seed);
  const double MeanGapPicos =
      static_cast<double>(PicosPerSecond) / RatePerSec;
  std::vector<JobRequest> Trace;
  Trace.reserve(NumJobs);
  Picos Now = 0;
  for (unsigned I = 0; I != NumJobs; ++I) {
    Now += exponential(Random, MeanGapPicos);
    Trace.push_back(instantiate(drawTemplate(Mix, Random), I + 1, Now, Model));
  }
  return Trace;
}

ClosedLoopWorkload::ClosedLoopWorkload(std::vector<JobTemplate> Mix,
                                       unsigned NumClients,
                                       unsigned JobsPerClient,
                                       Picos MeanThinkTime,
                                       std::uint64_t Seed,
                                       const ServiceModel &Model)
    : Mix(std::move(Mix)), NumClients(NumClients),
      JobsPerClient(JobsPerClient), MeanThinkTime(MeanThinkTime), Seed(Seed),
      Model(Model) {
  if (NumClients == 0)
    reportFatalError("closed loop needs at least one client");
  reset();
}

void ClosedLoopWorkload::reset() {
  ClientRngs.clear();
  ClientRngs.reserve(NumClients);
  // Decorrelated per-client streams: a client's think/draw sequence
  // depends only on its own response order, so different policies replay
  // each client identically up to response timing.
  for (unsigned C = 0; C != NumClients; ++C)
    ClientRngs.emplace_back(Seed + 0x9E3779B97F4A7C15ULL * (C + 1));
  Issued.assign(NumClients, 0);
  NextId = 1;
}

Picos ClosedLoopWorkload::thinkTime(std::uint64_t ClientId) {
  return exponential(ClientRngs[static_cast<std::size_t>(ClientId - 1)],
                     static_cast<double>(MeanThinkTime));
}

JobRequest ClosedLoopWorkload::makeJob(std::uint64_t ClientId,
                                       Picos Arrival) {
  Rng &Random = ClientRngs[static_cast<std::size_t>(ClientId - 1)];
  JobRequest Job = instantiate(drawTemplate(Mix, Random), NextId++, Arrival,
                               Model);
  Job.ClientId = ClientId;
  ++Issued[static_cast<std::size_t>(ClientId - 1)];
  return Job;
}

std::vector<JobRequest> ClosedLoopWorkload::initialJobs() {
  std::vector<JobRequest> Jobs;
  Jobs.reserve(NumClients);
  for (unsigned C = 1; C <= NumClients; ++C)
    Jobs.push_back(makeJob(C, thinkTime(C)));
  return Jobs;
}

std::vector<JobRequest> ClosedLoopWorkload::onResponse(const JobRequest &Job,
                                                       Picos Now) {
  if (Job.ClientId == 0 || Job.ClientId > NumClients)
    return {};
  if (Issued[static_cast<std::size_t>(Job.ClientId - 1)] >= JobsPerClient)
    return {};
  return {makeJob(Job.ClientId, Now + thinkTime(Job.ClientId))};
}
