//===- serve/Workload.cpp - Synthetic request generators ------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/Workload.h"

#include "support/ErrorHandling.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

using namespace fft3d;

std::vector<JobTemplate> fft3d::mixedWorkloadTemplates() {
  // Urgent interactive 2048^2 singles vs heavyweight 4096^2 batches: the
  // head-of-line-blocking mix where policy choice matters most. Both
  // carry deadlines so miss rates are comparable across classes.
  return {
      {2048, 1, JobPrecision::Fp32, /*Priority=*/0, /*Weight=*/3.0,
       /*DeadlineSlack=*/8.0},
      {2048, 1, JobPrecision::Fp16, /*Priority=*/1, /*Weight=*/1.0,
       /*DeadlineSlack=*/8.0},
      {4096, 1, JobPrecision::Fp32, /*Priority=*/2, /*Weight=*/1.5,
       /*DeadlineSlack=*/6.0},
      {4096, 2, JobPrecision::Fp32, /*Priority=*/2, /*Weight=*/0.5,
       /*DeadlineSlack=*/6.0},
  };
}

std::vector<JobTemplate> fft3d::convWorkloadTemplates() {
  // Image filtering traffic: real-input conv2d frames dominate, with the
  // interactive FFT classes still in the mix so the conv SLO class is
  // measured under cross-traffic, not in isolation. Conv frames cost
  // 11/4 PhaseTime each (three transforms + the pointwise barrier), so
  // their deadline slack is looser than the plain FFT classes'.
  std::vector<JobTemplate> Mix = {
      {2048, 1, JobPrecision::Fp32, /*Priority=*/0, /*Weight=*/2.0,
       /*DeadlineSlack=*/8.0},
      {2048, 1, JobPrecision::Fp32, /*Priority=*/1, /*Weight=*/3.0,
       /*DeadlineSlack=*/10.0},
      {4096, 1, JobPrecision::Fp32, /*Priority=*/2, /*Weight=*/1.0,
       /*DeadlineSlack=*/8.0},
  };
  Mix[1].Kind = JobKind::Conv2d;
  Mix[1].Input = JobInput::Real;
  Mix[2].Kind = JobKind::Conv2d;
  Mix[2].Input = JobInput::Real;
  return Mix;
}

namespace {

/// Weighted template draw.
const JobTemplate &drawTemplate(const std::vector<JobTemplate> &Mix,
                                Rng &Random) {
  if (Mix.empty())
    reportFatalError("workload mix must not be empty");
  double Total = 0.0;
  for (const JobTemplate &T : Mix) {
    if (T.Weight <= 0.0)
      reportFatalError("workload template weight must be positive");
    Total += T.Weight;
  }
  double Pick = Random.nextDouble() * Total;
  for (const JobTemplate &T : Mix) {
    Pick -= T.Weight;
    if (Pick < 0.0)
      return T;
  }
  return Mix.back();
}

/// Exponential draw with the given mean (picoseconds).
Picos exponential(Rng &Random, double MeanPicos) {
  // Clamp the uniform away from 1.0 so log() stays finite.
  const double U = std::min(Random.nextDouble(), 0.999999999);
  return static_cast<Picos>(-MeanPicos * std::log(1.0 - U));
}

JobRequest instantiate(const JobTemplate &T, std::uint64_t Id, Picos Arrival,
                       const ServiceModel &Model) {
  JobRequest Job;
  Job.Id = Id;
  Job.N = T.N;
  Job.Frames = T.Frames;
  Job.Precision = T.Precision;
  Job.Kind = T.Kind;
  Job.Input = T.Input;
  Job.Priority = T.Priority;
  Job.Arrival = Arrival;
  if (T.DeadlineSlack > 0.0) {
    const Picos Est = Model.fullMachineServiceTime(Job);
    Job.Deadline = Arrival + static_cast<Picos>(
                                 T.DeadlineSlack * static_cast<double>(Est));
  }
  return Job;
}

} // namespace

PoissonArrivalStream::PoissonArrivalStream(std::vector<JobTemplate> Mix,
                                           std::uint64_t NumJobs,
                                           double RatePerSec,
                                           std::uint64_t Seed,
                                           const ServiceModel &Model,
                                           unsigned NumTenants)
    : Mix(std::move(Mix)), NumJobs(NumJobs),
      MeanGapPicos(static_cast<double>(PicosPerSecond) / RatePerSec),
      Seed(Seed), Model(Model), NumTenants(NumTenants), Random(Seed) {
  if (RatePerSec <= 0.0)
    reportFatalError("arrival rate must be positive");
}

void PoissonArrivalStream::reset() {
  Random = Rng(Seed);
  Now = 0;
  Produced = 0;
}

bool PoissonArrivalStream::next(JobRequest &Job) {
  if (Produced >= NumJobs)
    return false;
  // Draw order is part of the format: gap, then template, then (only in
  // tenanted streams) tenant. generatePoissonTrace's byte-identity with
  // historical traces depends on it.
  Now += exponential(Random, MeanGapPicos);
  const JobTemplate &T = drawTemplate(Mix, Random);
  Job = instantiate(T, ++Produced, Now, Model);
  if (NumTenants > 0)
    Job.Tenant = 1 + Random.nextBelow(NumTenants);
  return true;
}

std::vector<JobRequest>
fft3d::generatePoissonTrace(const std::vector<JobTemplate> &Mix,
                            unsigned NumJobs, double RatePerSec,
                            std::uint64_t Seed, const ServiceModel &Model) {
  PoissonArrivalStream Stream(Mix, NumJobs, RatePerSec, Seed, Model);
  std::vector<JobRequest> Trace;
  Trace.reserve(NumJobs);
  JobRequest Job;
  while (Stream.next(Job))
    Trace.push_back(Job);
  return Trace;
}

namespace {

bool traceFail(std::string *Error, std::uint64_t LineNo,
               const std::string &Msg) {
  if (Error)
    *Error = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

bool traceParseU64(const std::string &Token, std::uint64_t &Out) {
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Token.c_str(), &End, 10);
  return errno == 0 && End && *End == '\0' && End != Token.c_str();
}

bool traceParseMillis(const std::string &Token, Picos &Out) {
  errno = 0;
  char *End = nullptr;
  const double Ms = std::strtod(Token.c_str(), &End);
  if (errno != 0 || !End || *End != '\0' || End == Token.c_str() || Ms < 0.0)
    return false;
  Out = static_cast<Picos>(Ms * static_cast<double>(PicosPerMilli) + 0.5);
  return true;
}

} // namespace

bool fft3d::parseJobTrace(const std::string &Text,
                          std::vector<JobRequest> &Out, std::string *Error) {
  std::vector<JobRequest> Jobs;
  std::istringstream Input(Text);
  std::string Raw;
  std::uint64_t LineNo = 0;
  Picos LastArrival = 0;
  while (std::getline(Input, Raw)) {
    ++LineNo;
    const std::size_t Hash = Raw.find('#');
    if (Hash != std::string::npos)
      Raw.resize(Hash);
    std::istringstream Words(Raw);
    std::vector<std::string> Tokens;
    for (std::string W; Words >> W;)
      Tokens.push_back(W);
    if (Tokens.empty())
      continue;
    if (Tokens[0] != "job")
      return traceFail(Error, LineNo,
                       "expected 'job', got '" + Tokens[0] + "'");

    JobRequest Job;
    Job.Id = Jobs.size() + 1;
    bool HaveArrival = false, HaveN = false;
    std::size_t I = 1;
    while (I < Tokens.size()) {
      const std::string &Key = Tokens[I];
      if (Key == "fp16") {
        Job.Precision = JobPrecision::Fp16;
        ++I;
        continue;
      }
      if (Key == "conv2d") {
        Job.Kind = JobKind::Conv2d;
        ++I;
        continue;
      }
      if (Key == "real") {
        Job.Input = JobInput::Real;
        ++I;
        continue;
      }
      if (I + 1 >= Tokens.size())
        return traceFail(Error, LineNo,
                         "'" + Key + "' is missing its value");
      const std::string &Value = Tokens[I + 1];
      I += 2;
      if (Key == "at") {
        if (!traceParseMillis(Value, Job.Arrival))
          return traceFail(Error, LineNo,
                           "expected: at <ms>, got 'at " + Value + "'");
        HaveArrival = true;
      } else if (Key == "n") {
        if (!traceParseU64(Value, Job.N) || Job.N < 2 ||
            (Job.N & (Job.N - 1)) != 0)
          return traceFail(Error, LineNo,
                           "n must be a power of two >= 2, got '" + Value +
                               "'");
        HaveN = true;
      } else if (Key == "frames") {
        std::uint64_t Frames = 0;
        if (!traceParseU64(Value, Frames) || Frames == 0)
          return traceFail(Error, LineNo,
                           "frames must be a positive integer, got '" +
                               Value + "'");
        Job.Frames = static_cast<unsigned>(Frames);
      } else if (Key == "prio") {
        std::uint64_t Prio = 0;
        if (!traceParseU64(Value, Prio))
          return traceFail(Error, LineNo,
                           "prio must be a non-negative integer, got '" +
                               Value + "'");
        Job.Priority = static_cast<unsigned>(Prio);
      } else if (Key == "deadline") {
        if (!traceParseMillis(Value, Job.Deadline))
          return traceFail(Error, LineNo,
                           "expected: deadline <ms>, got 'deadline " +
                               Value + "'");
      } else if (Key == "tenant") {
        if (!traceParseU64(Value, Job.Tenant))
          return traceFail(Error, LineNo,
                           "tenant must be a non-negative integer, got '" +
                               Value + "'");
      } else {
        return traceFail(Error, LineNo,
                         "unknown job attribute '" + Key +
                             "' (expected at, n, frames, fp16, conv2d, "
                             "real, prio, deadline, tenant)");
      }
    }
    if (!HaveArrival)
      return traceFail(Error, LineNo, "job needs an 'at <ms>' arrival");
    if (!HaveN)
      return traceFail(Error, LineNo, "job needs an 'n <size>'");
    if (Job.Arrival < LastArrival)
      return traceFail(Error, LineNo,
                       "arrival goes backwards (trace must be sorted)");
    if (Job.hasDeadline() && Job.Deadline <= Job.Arrival)
      return traceFail(Error, LineNo,
                       "deadline must be after the arrival");
    LastArrival = Job.Arrival;
    Jobs.push_back(Job);
  }
  Out = std::move(Jobs);
  return true;
}

ClosedLoopWorkload::ClosedLoopWorkload(std::vector<JobTemplate> Mix,
                                       unsigned NumClients,
                                       unsigned JobsPerClient,
                                       Picos MeanThinkTime,
                                       std::uint64_t Seed,
                                       const ServiceModel &Model)
    : Mix(std::move(Mix)), NumClients(NumClients),
      JobsPerClient(JobsPerClient), MeanThinkTime(MeanThinkTime), Seed(Seed),
      Model(Model) {
  if (NumClients == 0)
    reportFatalError("closed loop needs at least one client");
  reset();
}

void ClosedLoopWorkload::reset() {
  ClientRngs.clear();
  ClientRngs.reserve(NumClients);
  // Decorrelated per-client streams: a client's think/draw sequence
  // depends only on its own response order, so different policies replay
  // each client identically up to response timing.
  for (unsigned C = 0; C != NumClients; ++C)
    ClientRngs.emplace_back(Seed + 0x9E3779B97F4A7C15ULL * (C + 1));
  Issued.assign(NumClients, 0);
  NextId = 1;
}

Picos ClosedLoopWorkload::thinkTime(std::uint64_t ClientId) {
  return exponential(ClientRngs[static_cast<std::size_t>(ClientId - 1)],
                     static_cast<double>(MeanThinkTime));
}

JobRequest ClosedLoopWorkload::makeJob(std::uint64_t ClientId,
                                       Picos Arrival) {
  Rng &Random = ClientRngs[static_cast<std::size_t>(ClientId - 1)];
  JobRequest Job = instantiate(drawTemplate(Mix, Random), NextId++, Arrival,
                               Model);
  Job.ClientId = ClientId;
  ++Issued[static_cast<std::size_t>(ClientId - 1)];
  return Job;
}

std::vector<JobRequest> ClosedLoopWorkload::initialJobs() {
  std::vector<JobRequest> Jobs;
  Jobs.reserve(NumClients);
  for (unsigned C = 1; C <= NumClients; ++C)
    Jobs.push_back(makeJob(C, thinkTime(C)));
  return Jobs;
}

std::vector<JobRequest> ClosedLoopWorkload::onResponse(const JobRequest &Job,
                                                       Picos Now) {
  if (Job.ClientId == 0 || Job.ClientId > NumClients)
    return {};
  if (Issued[static_cast<std::size_t>(Job.ClientId - 1)] >= JobsPerClient)
    return {};
  return {makeJob(Job.ClientId, Now + thinkTime(Job.ClientId))};
}
