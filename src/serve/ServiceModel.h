//===- serve/ServiceModel.h - Per-job service-time estimation ---*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps a JobRequest onto the measured performance of the optimized
/// architecture. For every distinct (problem size, vault share) the model
/// runs the event-driven pipeline measurement once - a LayoutPlanner plan
/// for that share plus the BatchProcessor's lone-phase / overlapped-stage
/// simulation - and memoizes the result, so scheduling thousands of jobs
/// costs a handful of simulations.
///
/// A job on a v-vault partition gets the block plan Eq. 1 produces for
/// n_v = v; its per-frame time comes from the same simulation the batch
/// ablation uses. Multi-frame requests assemble the pipelined batch
/// timing; fp16 requests halve the streamed bytes (two elements per
/// 64-bit word), which halves the time of these memory-paced phases.
///
/// Partitions are assumed vault-disjoint: each vault has its own
/// controller, row buffers and TSV bundle, so co-running jobs on
/// different vault sets do not steal each other's activations. Shared
/// front-end effects (link arbitration, refresh alignment) are outside
/// the model; docs/Serving.md discusses the error this introduces.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_SERVICEMODEL_H
#define FFT3D_SERVE_SERVICEMODEL_H

#include "core/SystemConfig.h"
#include "layout/LayoutPlanner.h"
#include "serve/JobRequest.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

namespace fft3d {

class ThreadPool;

/// Memoized per-configuration measurement.
struct ServiceEstimate {
  /// One phase alone on the share (fill/drain stages of the pipeline).
  Picos PhaseTime = 0;
  /// The overlapped steady stage (column phase of frame i + row phase of
  /// frame i+1 sharing the partition's vaults).
  Picos OverlapTime = 0;
  /// Eq. 1 block plan for the share.
  BlockPlan Plan;

  /// End-to-end time of an F-frame request at fp32:
  ///   2*PhaseTime                       for F = 1,
  ///   2*PhaseTime + (F-1)*max(PhaseTime, OverlapTime)  otherwise.
  Picos totalTime(unsigned Frames) const;
};

/// Estimates service times for jobs on vault shares of one device.
class ServiceModel {
public:
  /// \p Mem describes the whole device; shares are expressed as a number
  /// of vaults <= Mem.Geo.NumVaults. \p MaxSimBytes / \p MaxSimOps bound
  /// each underlying phase simulation (smaller than the defaults: the
  /// serving layer needs dozens of estimates, not one deep measurement).
  /// \p SimThreads parallelises the vault shards inside each estimate's
  /// simulation (results are bit-identical for every value).
  /// \p Stacks > 1 serves jobs distributed over that many memory stacks:
  /// estimates then come from the cluster processor's slab-decomposed
  /// run (row phase + all-to-all transpose at \p LinkGBps + column
  /// phase) instead of the single-stack batch pipeline.
  explicit ServiceModel(const MemoryConfig &Mem,
                        std::uint64_t MaxSimBytes = 8ull << 20,
                        std::uint64_t MaxSimOps = 50000,
                        unsigned SimThreads = 1, unsigned Stacks = 1,
                        double LinkGBps = 32.0);

  unsigned totalVaults() const { return Mem.Geo.NumVaults; }

  /// The memoized measurement for (\p N, \p Vaults). Runs the simulations
  /// on first use. \p Vaults in [1, totalVaults()]. Thread-safe: the
  /// simulation runs outside the cache lock, so concurrent callers only
  /// serialize on the map itself.
  const ServiceEstimate &estimate(std::uint64_t N, unsigned Vaults) const;

  /// Fills the memo for every (N, Vaults) key in \p Keys concurrently on
  /// \p Pool. The estimates are per-key deterministic, so prewarming on
  /// many threads leaves the cache byte-identical to sequential fills.
  void prewarm(const std::vector<std::pair<std::uint64_t, unsigned>> &Keys,
               ThreadPool &Pool) const;

  /// Service time of \p Job when granted \p Vaults vaults.
  Picos serviceTime(const JobRequest &Job, unsigned Vaults) const;

  /// Shorthand: service time on the whole device (used for deadline
  /// assignment and SJF ranking).
  Picos fullMachineServiceTime(const JobRequest &Job) const {
    return serviceTime(Job, totalVaults());
  }

  unsigned stacks() const { return Stacks; }

private:
  MemoryConfig Mem;
  std::uint64_t MaxSimBytes;
  std::uint64_t MaxSimOps;
  unsigned SimThreads;
  unsigned Stacks;
  double LinkGBps;
  /// Guards Cache. std::map nodes are stable, so references handed out
  /// under the lock stay valid while later fills mutate the map.
  /// Keyed by (N, vault share, stacks) - the stack count changes the
  /// measured pipeline, so single-stack and distributed estimates for
  /// the same (N, share) must not alias.
  mutable std::mutex CacheMutex;
  mutable std::map<std::tuple<std::uint64_t, unsigned, unsigned>,
                   ServiceEstimate>
      Cache;
};

} // namespace fft3d

#endif // FFT3D_SERVE_SERVICEMODEL_H
