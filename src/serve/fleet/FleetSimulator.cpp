//===- serve/fleet/FleetSimulator.cpp - Fleet serving front-end -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/fleet/FleetSimulator.h"

#include "sim/EventQueue.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <deque>
#include <functional>

using namespace fft3d;

FleetSimulator::FleetSimulator(const FleetConfig &Config,
                               const ServiceModel &Model)
    : Config(Config), Model(Model) {
  if (Config.NumStacks == 0)
    reportFatalError("a fleet needs at least one stack");
  if (Config.QueueCapacity == 0)
    reportFatalError("fleet stack queues need capacity >= 1");
}

namespace {

/// Mutable state of one fleet run, shared by the event callbacks.
struct FleetState {
  EventQueue Events;
  StackDispatchSet Set;
  FleetRouter Router;
  SharedPlanCache Cache;
  TenantQuota Quota;
  BrownoutLadder Ladder;
  Autoscaler Scaler;
  std::vector<std::deque<JobRequest>> Queues;

  // Aggregate accounting (histograms, not per-job records: memory must
  // stay flat at 10^6 jobs).
  MetricHistogram LatencyMs{1.0, 512};
  MetricHistogram QueueMs{1.0, 512};
  double ServiceSumMs = 0.0;
  std::uint64_t Offered = 0;
  std::uint64_t Completed = 0;
  std::uint64_t ShedQuota = 0;
  std::uint64_t ShedBrownout = 0;
  std::uint64_t ShedQueueFull = 0;
  std::uint64_t ShedNoStack = 0;
  std::uint64_t Drained = 0;
  std::uint64_t WithDeadline = 0;
  std::uint64_t MissedDeadline = 0;
  std::uint64_t DegradedCompletions = 0;
  std::uint64_t Outstanding = 0;
  std::uint64_t PeakOutstanding = 0;
  std::uint64_t ScaleUps = 0;
  std::uint64_t ScaleDowns = 0;
  Picos FirstArrival = 0;
  bool SawArrival = false;
  Picos LastCompletion = 0;
  bool ArrivalsDone = false;

  FleetState(const FleetConfig &C)
      : Set(C.NumStacks),
        Router(C.Router, C.NumStacks, C.VirtualNodes, C.RingSeed),
        Cache(C.CacheMode, C.CacheBytes, C.PlanLatency), Quota(C.Quota),
        Ladder(C.Brownout), Scaler(C.Autoscale), Queues(C.NumStacks) {}

  unsigned activeStacks() const {
    unsigned Count = 0;
    for (const StackEndpoint &E : Set.endpoints())
      Count += E.Active ? 1 : 0;
    return Count;
  }
};

double toMillis(Picos Duration) {
  return static_cast<double>(Duration) / static_cast<double>(PicosPerMilli);
}

} // namespace

FleetResult FleetSimulator::run(ArrivalStream &Arrivals) {
  Arrivals.reset();
  FleetState State(Config);
  const unsigned TotalVaults = Model.totalVaults();
  Tracer *Trace = Config.Trace;
  const std::uint32_t Pid = Config.TracePid;
  if (Trace)
    Trace->setProcessName(Pid, std::string("fleet ") +
                                   routePolicyName(Config.Router));
  const HealthMonitor *Health =
      Config.Health && Config.Health->active() ? Config.Health.get()
                                               : nullptr;

  std::function<void(unsigned)> TryDispatch;
  std::function<void(JobRequest)> Arrive;
  std::function<void()> ScheduleNextArrival;

  auto FullEst = [&](const JobRequest &Job) {
    return Model.fullMachineServiceTime(Job);
  };

  auto Shed = [&](const JobRequest &Job, std::uint64_t &Counter,
                  const char *Why) {
    ++Counter;
    if (Job.hasDeadline()) {
      ++State.WithDeadline;
      ++State.MissedDeadline;
    }
    if (Trace && Trace->wants(TraceCatFleet))
      Trace->instant(TraceCatFleet, Why, Pid,
                     static_cast<std::uint32_t>(Job.Tenant),
                     State.Events.now(), "job", Job.Id);
  };

  /// Routes \p Job to a stack queue; sheds when nothing is routable or
  /// the target queue is full. Shared by fresh arrivals and drains.
  auto RouteIn = [&](const JobRequest &Job) {
    const unsigned S = State.Router.route(Job, State.Set);
    if (S == FleetRouter::NoStack) {
      Shed(Job, State.ShedNoStack, "shed_no_stack");
      return;
    }
    if (State.Queues[S].size() >= Config.QueueCapacity) {
      Shed(Job, State.ShedQueueFull, "shed_queue_full");
      return;
    }
    StackEndpoint &E = State.Set.endpoint(S);
    State.Queues[S].push_back(Job);
    ++E.QueueDepth;
    ++E.RoutedJobs;
    E.Backlog += FullEst(Job);
    ++State.Outstanding;
    State.PeakOutstanding =
        std::max(State.PeakOutstanding, State.Outstanding);
    if (Trace && Trace->wants(TraceCatFleet))
      Trace->instant(TraceCatFleet, "route", Pid, S, State.Events.now(),
                     "job", Job.Id, "stack", S);
    TryDispatch(S);
  };

  /// Pulls every queued job off \p S (failed or deactivated) and
  /// re-routes it; the endpoint must already be un-routable so the
  /// router picks survivors.
  auto DrainStack = [&](unsigned S) {
    StackEndpoint &E = State.Set.endpoint(S);
    while (!State.Queues[S].empty()) {
      const JobRequest Job = State.Queues[S].front();
      State.Queues[S].pop_front();
      --E.QueueDepth;
      ++E.DrainedJobs;
      E.Backlog -= FullEst(Job);
      --State.Outstanding;
      ++State.Drained;
      if (Trace && Trace->wants(TraceCatFleet))
        Trace->instant(TraceCatFleet, "drain", Pid, S, State.Events.now(),
                       "job", Job.Id, "stack", S);
      RouteIn(Job);
    }
  };

  /// Re-reads stack health and handles the edges: a stack that left the
  /// routable set drains to the survivors and loses its cache entries
  /// and affinities exactly once per transition.
  auto RefreshHealth = [&] {
    const StackHealthDelta Delta =
        State.Set.refreshHealth(Health, State.Events.now());
    for (const unsigned S : Delta.WentOffline) {
      State.Cache.invalidateStack(S);
      State.Router.dropStackAffinity(S);
      if (Trace && Trace->wants(TraceCatFleet))
        Trace->instant(TraceCatFleet, "stack_offline", Pid, S,
                       State.Events.now(), "stack", S);
      DrainStack(S);
    }
    for (const unsigned S : Delta.CameOnline)
      if (Trace && Trace->wants(TraceCatFleet))
        Trace->instant(TraceCatFleet, "stack_online", Pid, S,
                       State.Events.now(), "stack", S);
  };

  TryDispatch = [&](unsigned S) {
    StackEndpoint &E = State.Set.endpoint(S);
    if (E.Running != 0 || State.Queues[S].empty() || !E.Online)
      return;
    const JobRequest Job = State.Queues[S].front();
    State.Queues[S].pop_front();
    --E.QueueDepth;
    const Picos Now = State.Events.now();
    Picos Service = Model.serviceTime(Job, TotalVaults);
    bool Degraded = false;
    if (Health) {
      // Fleet-wide thermal throttle stretches service; stack losses are
      // NOT priced in here - the router already moved the load.
      const double Slow = Health->throttleSlowdown(Now);
      if (Slow > 1.0) {
        Service =
            static_cast<Picos>(static_cast<double>(Service) * Slow + 0.5);
        Degraded = true;
      }
    }
    const Picos Penalty =
        State.Cache.charge(Job.N, TotalVaults, S, E.HealthEpoch);
    if (Penalty != 0 && Trace && Trace->wants(TraceCatFleet))
      Trace->instant(TraceCatFleet, "plan_miss", Pid, S, Now, "job",
                     Job.Id, "n", Job.N);
    const Picos Complete = Now + std::max<Picos>(Penalty + Service, 1);
    E.Running = 1;
    if (Trace && Trace->wants(TraceCatFleet))
      Trace->span(TraceCatFleet, "job", Pid, S, Now, Complete - Now, "job",
                  Job.Id, "stack", S);
    State.Events.scheduleAt(Complete, [&, Job, S, Now, Degraded] {
      StackEndpoint &EC = State.Set.endpoint(S);
      EC.Running = 0;
      ++EC.CompletedJobs;
      EC.Backlog -= FullEst(Job);
      --State.Outstanding;
      ++State.Completed;
      const Picos Done = State.Events.now();
      State.LastCompletion = Done;
      const double LatMs = toMillis(Done - Job.Arrival);
      State.LatencyMs.observe(LatMs);
      State.QueueMs.observe(toMillis(Now - Job.Arrival));
      State.ServiceSumMs += toMillis(Done - Now);
      if (Degraded)
        ++State.DegradedCompletions;
      if (Job.hasDeadline()) {
        ++State.WithDeadline;
        const bool Missed = Done > Job.Deadline;
        if (Missed)
          ++State.MissedDeadline;
        State.Ladder.recordOutcome(Missed);
      }
      State.Scaler.recordLatency(LatMs);
      RefreshHealth();
      TryDispatch(S);
    });
  };

  Arrive = [&](JobRequest Job) {
    const Picos Now = State.Events.now();
    RefreshHealth();
    ++State.Offered;
    if (!State.SawArrival || Job.Arrival < State.FirstArrival) {
      State.FirstArrival = Job.Arrival;
      State.SawArrival = true;
    }
    if (!State.Quota.admit(Job.Tenant, Now)) {
      Shed(Job, State.ShedQuota, "shed_quota");
      return;
    }
    if (State.Ladder.sheds(Job.Priority)) {
      Shed(Job, State.ShedBrownout, "shed_brownout");
      return;
    }
    RouteIn(Job);
  };

  // Streaming arrivals: exactly one pending arrival event at a time, so
  // a 10^6-job stream never materializes.
  ScheduleNextArrival = [&] {
    JobRequest Next;
    if (!Arrivals.next(Next)) {
      State.ArrivalsDone = true;
      return;
    }
    State.Events.scheduleAt(Next.Arrival, [&, Next] {
      Arrive(Next);
      ScheduleNextArrival();
    });
  };

  // Periodic autoscaler evaluation; stops rescheduling once the stream
  // is exhausted and the fleet has drained, so the event queue can end.
  std::function<void()> ScaleTick = [&] {
    if (State.ArrivalsDone && State.Outstanding == 0)
      return;
    const Picos Now = State.Events.now();
    RefreshHealth();
    const ScaleDecision Decision = State.Scaler.evaluate(
        Now, State.activeStacks(), Config.NumStacks);
    if (Decision == ScaleDecision::Grow) {
      // Lowest-index inactive (and healthy) stack joins the active set.
      for (unsigned S = 0; S != Config.NumStacks; ++S) {
        StackEndpoint &E = State.Set.endpoint(S);
        if (E.Active || !E.Online)
          continue;
        E.Active = true;
        State.Scaler.actionTaken(Now);
        ++State.ScaleUps;
        if (Trace && Trace->wants(TraceCatFleet))
          Trace->instant(TraceCatFleet, "scale_up", Pid, S, Now, "stack",
                         S);
        break;
      }
    } else if (Decision == ScaleDecision::Shrink) {
      // Highest-index active stack leaves and drains to the rest.
      for (unsigned S = Config.NumStacks; S-- != 0;) {
        StackEndpoint &E = State.Set.endpoint(S);
        if (!E.Active)
          continue;
        E.Active = false;
        State.Router.dropStackAffinity(S);
        State.Scaler.actionTaken(Now);
        ++State.ScaleDowns;
        if (Trace && Trace->wants(TraceCatFleet))
          Trace->instant(TraceCatFleet, "scale_down", Pid, S, Now,
                         "stack", S);
        DrainStack(S);
        break;
      }
    }
    State.Events.scheduleAt(Now + Config.Autoscale.EvalPeriod, ScaleTick);
  };

  // An autoscaled fleet starts at its floor and grows into the rest of
  // the stacks on p99 pressure; without autoscaling every stack serves.
  if (Config.Autoscale.Enabled)
    for (unsigned S = Config.NumStacks;
         S-- > std::max(1u, Config.Autoscale.MinStacks);)
      State.Set.endpoint(S).Active = false;

  ScheduleNextArrival();
  if (Config.Autoscale.Enabled)
    State.Events.scheduleAt(Config.Autoscale.EvalPeriod, ScaleTick);
  State.Events.run();

  if (State.Outstanding != 0)
    reportFatalError("fleet run drained with work still outstanding");
  for (unsigned S = 0; S != Config.NumStacks; ++S)
    if (!State.Queues[S].empty() || State.Set.endpoint(S).Running != 0)
      reportFatalError("fleet run left a stack with queued/running work");

  FleetResult Result;
  Result.RouterName = routePolicyName(Config.Router);
  Result.CacheModeName = Config.CacheBytes == 0
                             ? "none"
                             : planCacheModeName(Config.CacheMode);
  Result.EndTime = State.Events.now();
  Result.LastCompletion = State.LastCompletion;
  Result.ShedQuota = State.ShedQuota;
  Result.ShedBrownout = State.ShedBrownout;
  Result.ShedQueueFull = State.ShedQueueFull;
  Result.ShedNoStack = State.ShedNoStack;
  Result.Drained = State.Drained;
  Result.Cache = State.Cache.stats();
  Result.PeakOutstanding = State.PeakOutstanding;
  Result.ScaleUps = State.ScaleUps;
  Result.ScaleDowns = State.ScaleDowns;
  Result.BrownoutEscalations = State.Ladder.escalations();
  Result.FinalActiveStacks = State.activeStacks();
  Result.Stacks = State.Set.endpoints();

  SloSummary &Sum = Result.Summary;
  Sum.Completed = State.Completed;
  Sum.Shed = State.ShedQuota + State.ShedBrownout + State.ShedQueueFull +
             State.ShedNoStack;
  Sum.Offered = Sum.Completed + Sum.Shed;
  if (Sum.Offered != 0)
    Sum.ShedRate = static_cast<double>(Sum.Shed) /
                   static_cast<double>(Sum.Offered);
  Sum.DegradedCompletions = State.DegradedCompletions;
  if (State.WithDeadline != 0)
    Sum.DeadlineMissRate = static_cast<double>(State.MissedDeadline) /
                           static_cast<double>(State.WithDeadline);
  if (Sum.Completed != 0) {
    Sum.HasLatencyStats = true;
    const Picos Makespan = State.LastCompletion > State.FirstArrival
                               ? State.LastCompletion - State.FirstArrival
                               : 0;
    if (Makespan != 0)
      Sum.ThroughputJobsPerSec =
          static_cast<double>(Sum.Completed) /
          (static_cast<double>(Makespan) /
           static_cast<double>(PicosPerSecond));
    Sum.P50LatencyMs = State.LatencyMs.percentile(0.50);
    Sum.P95LatencyMs = State.LatencyMs.percentile(0.95);
    Sum.P99LatencyMs = State.LatencyMs.percentile(0.99);
    Sum.P50QueueMs = State.QueueMs.percentile(0.50);
    Sum.P99QueueMs = State.QueueMs.percentile(0.99);
    Sum.MeanServiceMs =
        State.ServiceSumMs / static_cast<double>(Sum.Completed);
  }
  return Result;
}

void FleetSimulator::exportTo(const FleetResult &Result,
                              MetricsRegistry &Registry) {
  const MetricLabels L{{"router", Result.RouterName}};
  const SloSummary &S = Result.Summary;
  Registry.counter("fleet.offered", L).add(S.Offered);
  Registry.counter("fleet.completed", L).add(S.Completed);
  Registry.counter("fleet.shed_quota", L).add(Result.ShedQuota);
  Registry.counter("fleet.shed_brownout", L).add(Result.ShedBrownout);
  Registry.counter("fleet.shed_queue_full", L).add(Result.ShedQueueFull);
  Registry.counter("fleet.shed_no_stack", L).add(Result.ShedNoStack);
  Registry.counter("fleet.drained", L).add(Result.Drained);
  Registry.counter("fleet.scale_ups", L).add(Result.ScaleUps);
  Registry.counter("fleet.scale_downs", L).add(Result.ScaleDowns);
  Registry.counter("fleet.cache_hits", L).add(Result.Cache.Hits);
  Registry.counter("fleet.cache_misses", L).add(Result.Cache.Misses);
  Registry.counter("fleet.cache_evictions", L).add(Result.Cache.Evictions);
  Registry.counter("fleet.cache_invalidations", L)
      .add(Result.Cache.Invalidations);
  Registry.gauge("fleet.cache_hit_rate", L).set(Result.Cache.hitRate());
  Registry.gauge("fleet.peak_outstanding", L)
      .set(static_cast<double>(Result.PeakOutstanding));
  Registry.gauge("fleet.active_stacks", L)
      .set(Result.FinalActiveStacks);
  Registry.gauge("fleet.deadline_miss_rate", L).set(S.DeadlineMissRate);
  Registry.gauge("fleet.shed_rate", L).set(S.ShedRate);
  // Latency-derived gauges only when something completed (see the
  // SloTracker cold-start rule).
  if (S.HasLatencyStats) {
    Registry.gauge("fleet.throughput_jobs_per_sec", L)
        .set(S.ThroughputJobsPerSec);
    Registry.gauge("fleet.p50_latency_ms", L).set(S.P50LatencyMs);
    Registry.gauge("fleet.p99_latency_ms", L).set(S.P99LatencyMs);
  }
  for (const StackEndpoint &E : Result.Stacks) {
    const MetricLabels SL{{"router", Result.RouterName},
                          {"stack", std::to_string(E.Stack)}};
    Registry.counter("fleet.stack_routed", SL).add(E.RoutedJobs);
    Registry.counter("fleet.stack_completed", SL).add(E.CompletedJobs);
    Registry.counter("fleet.stack_drained", SL).add(E.DrainedJobs);
  }
}
