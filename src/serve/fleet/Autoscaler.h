//===- serve/fleet/Autoscaler.h - p99-driven stack scaling ------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grows and shrinks the fleet's active stack set on tail latency. The
/// control law, evaluated every EvalPeriod of simulated time:
///
///   windowed p99 > TargetP99  for GrowStreak consecutive evaluations
///     -> activate one stack (if any is inactive), start Cooldown;
///   windowed p99 < ShrinkFraction * TargetP99 for ShrinkStreak
///     consecutive evaluations
///     -> deactivate one stack (down to MinStacks), start Cooldown.
///
/// Three guards keep the loop from flapping on a square-wave load:
/// consecutive-breach streaks (one noisy window can't trigger), the
/// cooldown (a fresh action must take effect before the next one), and -
/// critically - the windowed p99 is an optional that is EMPTY below
/// MinSamples. A cold start or a just-drained fleet reports "no signal",
/// and no signal means hold, never "p99 = 0 so shrink everything" (the
/// failure mode the SloTracker empty-window fix closes for reports,
/// closed here for control).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_FLEET_AUTOSCALER_H
#define FFT3D_SERVE_FLEET_AUTOSCALER_H

#include "support/Units.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace fft3d {

/// Autoscaler configuration.
struct AutoscalePolicy {
  bool Enabled = false;
  /// Tail-latency target the fleet scales to hold, milliseconds.
  double TargetP99Ms = 0.0;
  /// Never deactivate below this many stacks.
  unsigned MinStacks = 1;
  /// Time between control evaluations.
  Picos EvalPeriod = 20 * PicosPerMilli;
  /// Minimum time between two scaling actions.
  Picos Cooldown = 100 * PicosPerMilli;
  /// Consecutive breached evaluations before growing / shrinking.
  unsigned GrowStreak = 2;
  unsigned ShrinkStreak = 4;
  /// Shrink only when p99 < ShrinkFraction * TargetP99Ms (the dead band
  /// between the two thresholds absorbs load that hovers at the target).
  double ShrinkFraction = 0.5;
  /// Completion-latency ring capacity and the minimum fill before the
  /// windowed p99 is considered a signal at all.
  std::size_t WindowSize = 256;
  std::size_t MinSamples = 32;
};

/// The scaling decision of one evaluation.
enum class ScaleDecision { Hold, Grow, Shrink };

/// Latency-window bookkeeping plus the hysteresis state machine.
class Autoscaler {
public:
  explicit Autoscaler(const AutoscalePolicy &Policy);

  /// Feeds one completion's end-to-end latency.
  void recordLatency(double Ms);

  /// Nearest-rank p99 over the retained window; empty below MinSamples.
  std::optional<double> windowedP99() const;

  /// One control evaluation at \p Now with \p ActiveStacks of
  /// \p TotalStacks active. Pure decision - the caller applies it (and
  /// may not be able to, e.g. grow with nothing inactive).
  ScaleDecision evaluate(Picos Now, unsigned ActiveStacks,
                         unsigned TotalStacks);

  /// The caller applied a decision at \p Now; starts the cooldown and
  /// resets the streaks.
  void actionTaken(Picos Now);

  std::uint64_t growDecisions() const { return GrowDecisions; }
  std::uint64_t shrinkDecisions() const { return ShrinkDecisions; }

private:
  AutoscalePolicy Policy;
  /// Latency ring (unordered; copied and sorted per p99 query).
  std::vector<double> Window;
  std::size_t NextSlot = 0;
  std::size_t Filled = 0;
  unsigned GrowBreaches = 0;
  unsigned ShrinkBreaches = 0;
  Picos LastAction = 0;
  bool ActedOnce = false;
  std::uint64_t GrowDecisions = 0;
  std::uint64_t ShrinkDecisions = 0;
};

} // namespace fft3d

#endif // FFT3D_SERVE_FLEET_AUTOSCALER_H
