//===- serve/fleet/SharedPlanCache.h - Fleet-wide plan cache ----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet front-end's LRU cache of layout plans and service results,
/// promoted out of the per-policy ServiceModel memoization so S stacks
/// share one plan store. A dispatch whose plan is cached starts
/// immediately; a miss pays a modeled planning latency (running Eq. 1
/// and the pipeline measurement at the front-end) before the job's
/// service time starts.
///
/// Keying is the interesting part. An Eq. 1 block plan depends only on
/// (N, vault share, memory geometry) - NOT on which stack runs it - so
/// in Shared mode every healthy stack resolves the same (N, share) to
/// one cache entry and a repeat-heavy trace pays each distinct shape
/// once for the whole fleet. A stack whose health has changed (vaults
/// lost, recovered: its health epoch is nonzero) computes stack-specific
/// degraded plans, so its entries are keyed (N, share, stack, epoch) and
/// a later epoch change orphans them automatically. PerStack mode keys
/// every entry by stack - exactly the old per-policy memoization - and
/// exists as the baseline the shared mode is benchmarked against.
///
/// Capacity is modeled in bytes (plan table + cached result frame per
/// entry); eviction is strict LRU. All bookkeeping is deterministic:
/// same lookup sequence, same hits, evictions and final contents.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_FLEET_SHAREDPLANCACHE_H
#define FFT3D_SERVE_FLEET_SHAREDPLANCACHE_H

#include "obs/Metrics.h"
#include "support/Units.h"

#include <cstdint>
#include <list>
#include <map>
#include <string>

namespace fft3d {

/// How plan-cache entries are keyed across the fleet.
enum class PlanCacheMode {
  /// Healthy stacks share entries; only degraded stacks key by stack.
  Shared,
  /// Every stack keys its own entries (the per-policy-memoization
  /// baseline).
  PerStack,
};

const char *planCacheModeName(PlanCacheMode Mode);

/// Cumulative cache accounting.
struct PlanCacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Evictions = 0;
  /// Entries dropped by invalidateStack (health transitions).
  std::uint64_t Invalidations = 0;
  /// Current and peak modeled footprint.
  std::uint64_t Bytes = 0;
  std::uint64_t PeakBytes = 0;

  double hitRate() const {
    const std::uint64_t Total = Hits + Misses;
    return Total == 0 ? 0.0
                      : static_cast<double>(Hits) /
                            static_cast<double>(Total);
  }
};

/// Fleet-shared LRU plan+result cache.
class SharedPlanCache {
public:
  /// Sentinel stack id for entries every healthy stack shares.
  static constexpr unsigned SharedSlot = ~0u;

  /// \p CapacityBytes bounds the modeled footprint (0 disables caching:
  /// every lookup misses and pays \p MissPenalty). \p MissPenalty is the
  /// modeled front-end planning latency charged before a missed
  /// dispatch's service time.
  SharedPlanCache(PlanCacheMode Mode, std::uint64_t CapacityBytes,
                  Picos MissPenalty);

  /// Looks up the plan for a job of size \p N on \p Vaults vaults routed
  /// to \p Stack at health epoch \p Epoch; inserts on miss. Returns the
  /// planning latency the dispatch must absorb: 0 on a hit, the miss
  /// penalty otherwise.
  Picos charge(std::uint64_t N, unsigned Vaults, unsigned Stack,
               std::uint64_t Epoch);

  /// True when charge() would hit (no state change).
  bool contains(std::uint64_t N, unsigned Vaults, unsigned Stack,
                std::uint64_t Epoch) const;

  /// Drops every entry keyed to \p Stack (called when the stack's health
  /// transitions: its degraded plans no longer match the new epoch).
  /// Shared-slot entries are geometry-only and survive.
  void invalidateStack(unsigned Stack);

  PlanCacheMode mode() const { return Mode; }
  Picos missPenalty() const { return MissPenalty; }
  std::size_t entries() const { return Index.size(); }
  const PlanCacheStats &stats() const { return Stats; }

  /// Publishes "fleet.cache_*" counters/gauges into \p Registry.
  void exportTo(MetricsRegistry &Registry) const;

private:
  struct Key {
    std::uint64_t N = 0;
    unsigned Vaults = 0;
    unsigned Stack = SharedSlot;
    std::uint64_t Epoch = 0;

    bool operator<(const Key &O) const {
      if (N != O.N)
        return N < O.N;
      if (Vaults != O.Vaults)
        return Vaults < O.Vaults;
      if (Stack != O.Stack)
        return Stack < O.Stack;
      return Epoch < O.Epoch;
    }
  };

  Key keyFor(std::uint64_t N, unsigned Vaults, unsigned Stack,
             std::uint64_t Epoch) const;
  static std::uint64_t entryBytes(std::uint64_t N);
  void evictTail();

  PlanCacheMode Mode;
  std::uint64_t CapacityBytes;
  Picos MissPenalty;
  /// MRU-first recency list; Index maps keys to list positions.
  std::list<std::pair<Key, std::uint64_t>> Lru;
  std::map<Key, std::list<std::pair<Key, std::uint64_t>>::iterator> Index;
  PlanCacheStats Stats;
};

} // namespace fft3d

#endif // FFT3D_SERVE_FLEET_SHAREDPLANCACHE_H
