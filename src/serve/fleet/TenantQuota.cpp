//===- serve/fleet/TenantQuota.cpp - Per-tenant admission -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/fleet/TenantQuota.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace fft3d;

TenantQuota::TenantQuota(const TenantQuotaPolicy &Policy) : Policy(Policy) {
  if (Policy.Enabled && (Policy.JobsPerSec <= 0.0 || Policy.Burst < 1.0))
    reportFatalError("tenant quota needs a positive rate and burst >= 1");
}

bool TenantQuota::admit(std::uint64_t Tenant, Picos Now) {
  if (!Policy.Enabled || Tenant == 0)
    return true;
  auto [It, New] = Buckets.try_emplace(Tenant);
  Bucket &B = It->second;
  if (New) {
    // A tenant's first arrival finds a full bucket.
    B.Tokens = Policy.Burst;
    B.LastRefill = Now;
  } else if (Now > B.LastRefill) {
    const double Refill = static_cast<double>(Now - B.LastRefill) /
                          static_cast<double>(PicosPerSecond) *
                          Policy.JobsPerSec;
    B.Tokens = std::min(Policy.Burst, B.Tokens + Refill);
    B.LastRefill = Now;
  }
  if (B.Tokens >= 1.0) {
    B.Tokens -= 1.0;
    return true;
  }
  ++B.Shed;
  ++Shed;
  return false;
}

std::uint64_t TenantQuota::throttledTenants() const {
  std::uint64_t Count = 0;
  for (const auto &[Tenant, B] : Buckets)
    Count += B.Shed != 0 ? 1 : 0;
  return Count;
}

BrownoutLadder::BrownoutLadder(const BrownoutLadderPolicy &Policy)
    : Policy(Policy) {
  if (Policy.Enabled) {
    if (Policy.NumTiers == 0)
      reportFatalError("brownout ladder needs at least one tier");
    if (Policy.Window == 0)
      reportFatalError("brownout ladder needs a non-empty window");
    if (Policy.ExitMissRate >= Policy.EnterMissRate)
      reportFatalError(
          "brownout exit rate must be below the enter rate (hysteresis)");
  }
}

void BrownoutLadder::recordOutcome(bool Missed) {
  if (!Policy.Enabled)
    return;
  Window.push_back(Missed);
  if (Window.size() > Policy.Window)
    Window.pop_front();
  if (Window.size() < Policy.Window)
    return;
  const double MissRate =
      static_cast<double>(std::count(Window.begin(), Window.end(), true)) /
      static_cast<double>(Window.size());
  if (MissRate >= Policy.EnterMissRate && Level < Policy.NumTiers) {
    ++Level;
    ++Escalations;
    Window.clear();
  } else if (MissRate <= Policy.ExitMissRate && Level > 0) {
    --Level;
    Window.clear();
  }
}

bool BrownoutLadder::sheds(unsigned Priority) const {
  if (!Policy.Enabled || Level == 0)
    return false;
  // Level L sheds the L least-urgent tiers. Priorities beyond the tier
  // count clamp into the bottom tier.
  const unsigned Tier = std::min(Priority, Policy.NumTiers - 1);
  return Tier >= Policy.NumTiers - Level;
}
