//===- serve/fleet/FleetRouter.h - Front-end routing policies ---*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routes arriving jobs to stacks. Three pluggable policies:
///
///  - hash: consistent hashing by tenant over a static ring of V virtual
///    nodes per stack. A tenant's jobs land on one stack (cache and
///    state locality); when a stack joins or leaves the routable set
///    only ~K/S of the keys move, because the ring walk just skips dead
///    nodes instead of re-dealing every key;
///  - least-loaded: the routable stack with the smallest outstanding
///    backlog (estimated queued + running work), lowest index on ties -
///    the latency-greedy baseline;
///  - affinity: repeats of the same job shape (N, precision) return to
///    the stack that last planned that shape, so its cached plan is
///    guaranteed warm; first-seen shapes fall back to least-loaded.
///    Affinity to a stack that leaves the routable set is dropped and
///    re-learned from the next fallback.
///
/// Routing is deterministic: a pure function of (policy, seed, the job,
/// the endpoint set's current state). The router never inspects wall
/// clocks or RNG state of its own.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_FLEET_FLEETROUTER_H
#define FFT3D_SERVE_FLEET_FLEETROUTER_H

#include "cluster/StackDispatch.h"
#include "serve/JobRequest.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fft3d {

/// Front-end routing policy.
enum class RoutePolicy { Hash, LeastLoaded, Affinity };

const char *routePolicyName(RoutePolicy Policy);

/// Parses "hash" / "least-loaded" / "affinity". Returns false (and sets
/// \p Error) on anything else.
bool parseRoutePolicy(const std::string &Text, RoutePolicy &Policy,
                      std::string *Error = nullptr);

/// Stateless-per-decision job router over a StackDispatchSet.
class FleetRouter {
public:
  /// Returned when no stack is routable.
  static constexpr unsigned NoStack = ~0u;

  /// The hash ring gets \p VirtualNodes nodes per stack, positioned by
  /// a splitmix64 hash salted with \p Seed (so tests can exercise
  /// different ring layouts).
  FleetRouter(RoutePolicy Policy, unsigned NumStacks,
              unsigned VirtualNodes = 64, std::uint64_t Seed = 0);

  /// Picks a routable stack for \p Job, or NoStack when the set has
  /// none. Affinity mode records the decision for the job's shape.
  unsigned route(const JobRequest &Job, const StackDispatchSet &Set);

  /// Forgets shape affinities pinned to \p Stack (stack left the
  /// routable set); hash and least-loaded keep no per-stack state.
  void dropStackAffinity(unsigned Stack);

  RoutePolicy policy() const { return Policy; }
  const char *policyName() const { return routePolicyName(Policy); }

  /// The consistent-hash stack for \p Key (ignores load, honours
  /// routability). Exposed for the ring-stability property tests.
  unsigned hashStack(std::uint64_t Key, const StackDispatchSet &Set) const;

private:
  unsigned leastLoaded(const StackDispatchSet &Set) const;

  RoutePolicy Policy;
  /// Ring positions (sorted ascending) and the stack owning each.
  std::vector<std::pair<std::uint64_t, unsigned>> Ring;
  /// Affinity memory: job shape -> last stack that planned it.
  std::map<std::pair<std::uint64_t, unsigned>, unsigned> Affinity;
};

} // namespace fft3d

#endif // FFT3D_SERVE_FLEET_FLEETROUTER_H
