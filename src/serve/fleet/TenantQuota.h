//===- serve/fleet/TenantQuota.h - Per-tenant admission ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-level admission: per-tenant token buckets and a tiered brownout
/// ladder.
///
/// Quotas are the classic token bucket in simulated time: each tenant's
/// bucket refills at JobsPerSec tokens per simulated second up to Burst;
/// an arrival that finds no whole token is shed before it ever reaches a
/// stack queue. Untenanted jobs (Tenant == 0) bypass quotas - quota
/// enforcement is a contract between named tenants and the operator.
///
/// Brownout generalizes the serving layer's single-floor policy into a
/// ladder over priority tiers. At level L the fleet sheds every arrival
/// in the L least-urgent tiers (priority >= NumTiers - L), so pressure
/// peels load off strictly from the bottom: level 1 drops bulk work,
/// level 2 also drops standard work, and so on; the top tier is only
/// shed at the maximum level. The level moves one step at a time when
/// the deadline-miss rate over a sliding completion window crosses the
/// enter threshold (up) or the exit threshold (down), with the window
/// cleared on each move so a single burst cannot ratchet straight to the
/// top.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_FLEET_TENANTQUOTA_H
#define FFT3D_SERVE_FLEET_TENANTQUOTA_H

#include "support/Units.h"

#include <cstdint>
#include <deque>
#include <map>

namespace fft3d {

/// Per-tenant token-bucket parameters (shared by every tenant).
struct TenantQuotaPolicy {
  bool Enabled = false;
  /// Sustained admission rate per tenant, jobs per simulated second.
  double JobsPerSec = 100.0;
  /// Bucket capacity: the burst a quiet tenant may submit at once.
  double Burst = 20.0;
};

/// Token-bucket admission over the tenants seen so far.
class TenantQuota {
public:
  explicit TenantQuota(const TenantQuotaPolicy &Policy);

  /// True when the arrival passes quota (consuming one token). A
  /// disabled policy and untenanted jobs always pass.
  bool admit(std::uint64_t Tenant, Picos Now);

  std::uint64_t shedJobs() const { return Shed; }
  /// Tenants that have hit their quota at least once.
  std::uint64_t throttledTenants() const;

private:
  struct Bucket {
    double Tokens = 0.0;
    Picos LastRefill = 0;
    std::uint64_t Shed = 0;
  };

  TenantQuotaPolicy Policy;
  std::map<std::uint64_t, Bucket> Buckets;
  std::uint64_t Shed = 0;
};

/// Tiered brownout configuration.
struct BrownoutLadderPolicy {
  bool Enabled = false;
  /// Priority tiers the ladder sheds over: priorities 0..NumTiers-1
  /// (anything >= NumTiers sits in the bottom tier).
  unsigned NumTiers = 4;
  /// Move up a level when the windowed miss rate reaches Enter; move
  /// down when it falls to Exit. Enter > Exit gives the hysteresis band.
  double EnterMissRate = 0.5;
  double ExitMissRate = 0.2;
  /// Sliding window length, in deadline-carrying completions.
  std::size_t Window = 64;
};

/// The brownout ladder's level state machine.
class BrownoutLadder {
public:
  explicit BrownoutLadder(const BrownoutLadderPolicy &Policy);

  /// Feeds one deadline-carrying completion (\p Missed = past deadline).
  void recordOutcome(bool Missed);

  /// True when an arrival of \p Priority is shed at the current level.
  bool sheds(unsigned Priority) const;

  unsigned level() const { return Level; }
  /// Number of level increases (entries into deeper brownout).
  std::uint64_t escalations() const { return Escalations; }

private:
  BrownoutLadderPolicy Policy;
  unsigned Level = 0;
  std::deque<bool> Window;
  std::uint64_t Escalations = 0;
};

} // namespace fft3d

#endif // FFT3D_SERVE_FLEET_TENANTQUOTA_H
