//===- serve/fleet/Autoscaler.cpp - p99-driven stack scaling --------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/fleet/Autoscaler.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cmath>

using namespace fft3d;

Autoscaler::Autoscaler(const AutoscalePolicy &Policy) : Policy(Policy) {
  if (!Policy.Enabled)
    return;
  if (Policy.TargetP99Ms <= 0.0)
    reportFatalError("autoscaler needs a positive p99 target");
  if (Policy.WindowSize == 0 || Policy.MinSamples == 0 ||
      Policy.MinSamples > Policy.WindowSize)
    reportFatalError("autoscaler window must hold MinSamples samples");
  if (Policy.ShrinkFraction <= 0.0 || Policy.ShrinkFraction >= 1.0)
    reportFatalError("autoscaler shrink fraction must be in (0, 1)");
  if (Policy.EvalPeriod == 0)
    reportFatalError("autoscaler needs a positive evaluation period");
  Window.resize(Policy.WindowSize, 0.0);
}

void Autoscaler::recordLatency(double Ms) {
  if (!Policy.Enabled)
    return;
  Window[NextSlot] = Ms;
  NextSlot = (NextSlot + 1) % Window.size();
  Filled = std::min(Filled + 1, Window.size());
}

std::optional<double> Autoscaler::windowedP99() const {
  if (!Policy.Enabled || Filled < Policy.MinSamples)
    return std::nullopt;
  std::vector<double> Sorted(Window.begin(),
                             Window.begin() +
                                 static_cast<std::ptrdiff_t>(Filled));
  std::sort(Sorted.begin(), Sorted.end());
  const auto Rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(Filled)));
  return Sorted[std::max<std::size_t>(Rank, 1) - 1];
}

ScaleDecision Autoscaler::evaluate(Picos Now, unsigned ActiveStacks,
                                   unsigned TotalStacks) {
  if (!Policy.Enabled)
    return ScaleDecision::Hold;
  if (ActedOnce && Now < LastAction + Policy.Cooldown)
    return ScaleDecision::Hold;
  const std::optional<double> P99 = windowedP99();
  if (!P99) {
    // No signal (cold start, just drained): hold, and forget part-built
    // streaks so stale breaches don't fire on the first fresh sample.
    GrowBreaches = 0;
    ShrinkBreaches = 0;
    return ScaleDecision::Hold;
  }
  if (*P99 > Policy.TargetP99Ms) {
    ShrinkBreaches = 0;
    if (++GrowBreaches >= Policy.GrowStreak && ActiveStacks < TotalStacks) {
      ++GrowDecisions;
      return ScaleDecision::Grow;
    }
    return ScaleDecision::Hold;
  }
  GrowBreaches = 0;
  if (*P99 < Policy.ShrinkFraction * Policy.TargetP99Ms) {
    if (++ShrinkBreaches >= Policy.ShrinkStreak &&
        ActiveStacks > Policy.MinStacks) {
      ++ShrinkDecisions;
      return ScaleDecision::Shrink;
    }
    return ScaleDecision::Hold;
  }
  // Dead band between the thresholds: load is near target, leave the
  // fleet alone.
  ShrinkBreaches = 0;
  return ScaleDecision::Hold;
}

void Autoscaler::actionTaken(Picos Now) {
  LastAction = Now;
  ActedOnce = true;
  GrowBreaches = 0;
  ShrinkBreaches = 0;
}
