//===- serve/fleet/FleetSimulator.h - Fleet serving front-end ---*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-scale serving loop: a front-end tier routing an open-loop
/// arrival stream across S stacks. Each arrival passes tenant quotas and
/// the brownout ladder, is routed to a stack by the configured policy,
/// and waits in that stack's bounded FCFS queue; each stack runs one job
/// at a time at its whole-machine service estimate, charging the shared
/// plan cache's miss penalty when the job's plan is cold. Health
/// transitions (stack_fail / recover / partition from the cluster fault
/// timelines) drain the victim's queue to the survivors and invalidate
/// its cache entries; the autoscaler grows and shrinks the active stack
/// set on windowed p99.
///
/// Memory is flat in the run length: arrivals are pulled one at a time
/// from the ArrivalStream, queues are bounded, and statistics live in
/// fixed-bucket histograms and counters - so outstanding state is at
/// most S * (QueueCapacity + 1) jobs regardless of whether the trace has
/// 10^3 or 10^6 of them.
///
/// Determinism: the loop itself is single-threaded on the EventQueue
/// (ties run in insertion order), every random draw happened inside the
/// seeded ArrivalStream, and the only --sim-threads dependence is the
/// ServiceModel measurement, which is bit-identical at any thread count.
/// Two runs of the same (stream, config) therefore produce byte-equal
/// reports at any --sim-threads value.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_FLEET_FLEETSIMULATOR_H
#define FFT3D_SERVE_FLEET_FLEETSIMULATOR_H

#include "cluster/StackDispatch.h"
#include "obs/Tracer.h"
#include "serve/HealthMonitor.h"
#include "serve/SloTracker.h"
#include "serve/Workload.h"
#include "serve/fleet/Autoscaler.h"
#include "serve/fleet/FleetRouter.h"
#include "serve/fleet/SharedPlanCache.h"
#include "serve/fleet/TenantQuota.h"

#include <memory>
#include <string>
#include <vector>

namespace fft3d {

/// Fleet front-end configuration.
struct FleetConfig {
  unsigned NumStacks = 2;
  /// Per-stack pending-queue bound (the backpressure point).
  std::size_t QueueCapacity = 64;
  RoutePolicy Router = RoutePolicy::Hash;
  /// Hash-ring shape (virtual nodes per stack, ring salt).
  unsigned VirtualNodes = 64;
  std::uint64_t RingSeed = 0;
  /// Shared plan cache; CacheBytes == 0 disables caching (every
  /// dispatch pays PlanLatency - the cache-less baseline).
  PlanCacheMode CacheMode = PlanCacheMode::Shared;
  std::uint64_t CacheBytes = 8ull << 20;
  /// Modeled front-end planning latency on a plan-cache miss.
  Picos PlanLatency = 200 * PicosPerMicro;
  TenantQuotaPolicy Quota;
  BrownoutLadderPolicy Brownout;
  AutoscalePolicy Autoscale;
  /// Health oracle (stack_fail / partition timelines); null = always
  /// healthy.
  std::shared_ptr<const HealthMonitor> Health;
  /// Timeline tracer (fleet category); null records nothing.
  Tracer *Trace = nullptr;
  std::uint32_t TracePid = 1;
};

/// Outcome of one fleet run.
struct FleetResult {
  std::string RouterName;
  std::string CacheModeName;
  /// Aggregate SLO view; percentiles are histogram-resolved (1 ms
  /// buckets), HasLatencyStats false when nothing completed.
  SloSummary Summary;
  /// Simulation time of the last event / last completion.
  Picos EndTime = 0;
  Picos LastCompletion = 0;
  std::uint64_t ShedQuota = 0;
  std::uint64_t ShedBrownout = 0;
  std::uint64_t ShedQueueFull = 0;
  /// Arrivals (or drained jobs) with no routable stack to go to.
  std::uint64_t ShedNoStack = 0;
  /// Jobs pulled out of a failed/deactivated stack's queue and
  /// re-routed.
  std::uint64_t Drained = 0;
  PlanCacheStats Cache;
  /// Peak queued + running jobs across the fleet; structurally bounded
  /// by NumStacks * (QueueCapacity + 1).
  std::uint64_t PeakOutstanding = 0;
  std::uint64_t ScaleUps = 0;
  std::uint64_t ScaleDowns = 0;
  std::uint64_t BrownoutEscalations = 0;
  unsigned FinalActiveStacks = 0;
  /// Final per-stack accounting (routed / completed / drained).
  std::vector<StackEndpoint> Stacks;
};

/// Runs arrival streams against the fleet front-end.
class FleetSimulator {
public:
  FleetSimulator(const FleetConfig &Config, const ServiceModel &Model);

  /// Simulates \p Arrivals to completion (resets the stream first, so
  /// one stream replays identically across router configurations).
  FleetResult run(ArrivalStream &Arrivals);

  /// Publishes a finished run's "fleet.*" metrics into \p Registry,
  /// labeled router=<policy>.
  static void exportTo(const FleetResult &Result, MetricsRegistry &Registry);

private:
  FleetConfig Config;
  const ServiceModel &Model;
};

} // namespace fft3d

#endif // FFT3D_SERVE_FLEET_FLEETSIMULATOR_H
