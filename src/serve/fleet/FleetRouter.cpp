//===- serve/fleet/FleetRouter.cpp - Front-end routing policies -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/fleet/FleetRouter.h"

#include "fault/FaultHash.h"
#include "support/ErrorHandling.h"

#include <algorithm>

using namespace fft3d;

const char *fft3d::routePolicyName(RoutePolicy Policy) {
  switch (Policy) {
  case RoutePolicy::Hash:
    return "hash";
  case RoutePolicy::LeastLoaded:
    return "least-loaded";
  case RoutePolicy::Affinity:
    return "affinity";
  }
  fft3d_unreachable("unknown RoutePolicy");
}

bool fft3d::parseRoutePolicy(const std::string &Text, RoutePolicy &Policy,
                             std::string *Error) {
  if (Text == "hash")
    Policy = RoutePolicy::Hash;
  else if (Text == "least-loaded")
    Policy = RoutePolicy::LeastLoaded;
  else if (Text == "affinity")
    Policy = RoutePolicy::Affinity;
  else {
    if (Error)
      *Error = "unknown router policy '" + Text +
               "' (expected hash, least-loaded, affinity)";
    return false;
  }
  return true;
}

FleetRouter::FleetRouter(RoutePolicy Policy, unsigned NumStacks,
                         unsigned VirtualNodes, std::uint64_t Seed)
    : Policy(Policy) {
  if (NumStacks == 0)
    reportFatalError("fleet router needs at least one stack");
  if (VirtualNodes == 0)
    reportFatalError("hash ring needs at least one virtual node per stack");
  Ring.reserve(static_cast<std::size_t>(NumStacks) * VirtualNodes);
  for (unsigned S = 0; S != NumStacks; ++S)
    for (unsigned V = 0; V != VirtualNodes; ++V)
      Ring.emplace_back(
          fault_hash::mix64(Seed ^ fault_hash::mix64(
                                       (static_cast<std::uint64_t>(S) << 32) |
                                       V)),
          S);
  // Sorting by (position, stack) makes the walk order deterministic even
  // in the astronomically unlikely event of a position collision.
  std::sort(Ring.begin(), Ring.end());
}

unsigned FleetRouter::hashStack(std::uint64_t Key,
                                const StackDispatchSet &Set) const {
  const std::uint64_t Point = fault_hash::mix64(Key);
  // Clockwise walk from the first node at or after the key's point; the
  // membership-change guarantee comes from skipping (not re-hashing
  // around) unroutable stacks.
  const auto Start = std::lower_bound(
      Ring.begin(), Ring.end(),
      std::make_pair(Point, 0u),
      [](const auto &A, const auto &B) { return A.first < B.first; });
  const std::size_t Begin =
      static_cast<std::size_t>(Start - Ring.begin());
  for (std::size_t I = 0; I != Ring.size(); ++I) {
    const unsigned Stack = Ring[(Begin + I) % Ring.size()].second;
    if (Set.endpoint(Stack).routable())
      return Stack;
  }
  return NoStack;
}

unsigned FleetRouter::leastLoaded(const StackDispatchSet &Set) const {
  unsigned Best = NoStack;
  for (const StackEndpoint &E : Set.endpoints()) {
    if (!E.routable())
      continue;
    if (Best == NoStack || E.Backlog < Set.endpoint(Best).Backlog)
      Best = E.Stack;
  }
  return Best;
}

unsigned FleetRouter::route(const JobRequest &Job,
                            const StackDispatchSet &Set) {
  switch (Policy) {
  case RoutePolicy::Hash: {
    // Untenanted jobs spread by id so a tenant-free trace still
    // balances; tenanted jobs stick to their tenant's arc.
    const std::uint64_t Key =
        Job.Tenant != 0 ? Job.Tenant : 0x8000000000000000ULL ^ Job.Id;
    return hashStack(Key, Set);
  }
  case RoutePolicy::LeastLoaded:
    return leastLoaded(Set);
  case RoutePolicy::Affinity: {
    const std::pair<std::uint64_t, unsigned> Shape(
        Job.N, static_cast<unsigned>(Job.Precision));
    const auto It = Affinity.find(Shape);
    if (It != Affinity.end() && Set.endpoint(It->second).routable())
      return It->second;
    const unsigned Fallback = leastLoaded(Set);
    if (Fallback != NoStack)
      Affinity[Shape] = Fallback;
    return Fallback;
  }
  }
  fft3d_unreachable("unknown RoutePolicy");
}

void FleetRouter::dropStackAffinity(unsigned Stack) {
  for (auto It = Affinity.begin(); It != Affinity.end();) {
    if (It->second == Stack)
      It = Affinity.erase(It);
    else
      ++It;
  }
}
