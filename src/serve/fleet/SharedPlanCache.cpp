//===- serve/fleet/SharedPlanCache.cpp - Fleet-wide plan cache ------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/fleet/SharedPlanCache.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace fft3d;

const char *fft3d::planCacheModeName(PlanCacheMode Mode) {
  switch (Mode) {
  case PlanCacheMode::Shared:
    return "shared";
  case PlanCacheMode::PerStack:
    return "per-stack";
  }
  fft3d_unreachable("unknown PlanCacheMode");
}

SharedPlanCache::SharedPlanCache(PlanCacheMode Mode,
                                 std::uint64_t CapacityBytes,
                                 Picos MissPenalty)
    : Mode(Mode), CapacityBytes(CapacityBytes), MissPenalty(MissPenalty) {}

SharedPlanCache::Key SharedPlanCache::keyFor(std::uint64_t N,
                                             unsigned Vaults,
                                             unsigned Stack,
                                             std::uint64_t Epoch) const {
  Key K;
  K.N = N;
  K.Vaults = Vaults;
  // A healthy stack's plan is geometry-only, so in Shared mode it lives
  // in the fleet-wide slot; any health change (epoch != 0) forces
  // stack-specific degraded entries.
  if (Mode == PlanCacheMode::Shared && Epoch == 0)
    return K;
  K.Stack = Stack;
  K.Epoch = Epoch;
  return K;
}

std::uint64_t SharedPlanCache::entryBytes(std::uint64_t N) {
  // Modeled footprint: a fixed plan table (block plan, phase timings,
  // metadata) plus a cached result descriptor that grows with the
  // problem's row length.
  return 4096 + 2 * N;
}

void SharedPlanCache::evictTail() {
  while (Stats.Bytes > CapacityBytes && !Lru.empty()) {
    const auto &[Key, Bytes] = Lru.back();
    Stats.Bytes -= Bytes;
    ++Stats.Evictions;
    Index.erase(Key);
    Lru.pop_back();
  }
}

Picos SharedPlanCache::charge(std::uint64_t N, unsigned Vaults,
                              unsigned Stack, std::uint64_t Epoch) {
  const Key K = keyFor(N, Vaults, Stack, Epoch);
  const auto It = Index.find(K);
  if (It != Index.end()) {
    ++Stats.Hits;
    Lru.splice(Lru.begin(), Lru, It->second);
    return 0;
  }
  ++Stats.Misses;
  const std::uint64_t Bytes = entryBytes(N);
  if (CapacityBytes == 0 || Bytes > CapacityBytes)
    return MissPenalty; // Uncacheable: pay the planner every time.
  Lru.emplace_front(K, Bytes);
  Index.emplace(K, Lru.begin());
  Stats.Bytes += Bytes;
  Stats.PeakBytes = std::max(Stats.PeakBytes, Stats.Bytes);
  evictTail();
  return MissPenalty;
}

bool SharedPlanCache::contains(std::uint64_t N, unsigned Vaults,
                               unsigned Stack, std::uint64_t Epoch) const {
  return Index.count(keyFor(N, Vaults, Stack, Epoch)) != 0;
}

void SharedPlanCache::invalidateStack(unsigned Stack) {
  for (auto It = Index.begin(); It != Index.end();) {
    if (It->first.Stack != Stack) {
      ++It;
      continue;
    }
    Stats.Bytes -= It->second->second;
    ++Stats.Invalidations;
    Lru.erase(It->second);
    It = Index.erase(It);
  }
}

void SharedPlanCache::exportTo(MetricsRegistry &Registry) const {
  const MetricLabels L{{"mode", planCacheModeName(Mode)}};
  Registry.counter("fleet.cache_hits", L).add(Stats.Hits);
  Registry.counter("fleet.cache_misses", L).add(Stats.Misses);
  Registry.counter("fleet.cache_evictions", L).add(Stats.Evictions);
  Registry.counter("fleet.cache_invalidations", L).add(Stats.Invalidations);
  Registry.gauge("fleet.cache_bytes", L).set(static_cast<double>(Stats.Bytes));
  Registry.gauge("fleet.cache_peak_bytes", L)
      .set(static_cast<double>(Stats.PeakBytes));
  Registry.gauge("fleet.cache_hit_rate", L).set(Stats.hitRate());
}
