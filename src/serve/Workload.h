//===- serve/Workload.h - Synthetic request generators ----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Produces the request streams the serving simulator schedules. Two
/// classic shapes:
///
///  - open loop: arrivals are a Poisson process at a fixed offered rate,
///    independent of how the system is doing - the overload-revealing
///    model (generatePoissonTrace / TraceWorkload);
///  - closed loop: a fixed population of clients, each thinking for an
///    exponential pause after every response before issuing its next
///    request - arrivals self-throttle to the system's speed
///    (ClosedLoopWorkload).
///
/// Jobs are drawn from a weighted mix of templates (size, frames,
/// precision, priority, deadline slack). All randomness flows through
/// support/Random's seeded generator, so a (mix, seed) pair always
/// produces the identical stream - the property the `--seed` CLI flag
/// and the byte-identical-output acceptance test rely on.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_WORKLOAD_H
#define FFT3D_SERVE_WORKLOAD_H

#include "serve/JobRequest.h"
#include "serve/ServiceModel.h"
#include "support/Random.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fft3d {

/// One entry of the workload mix.
struct JobTemplate {
  std::uint64_t N = 2048;
  unsigned Frames = 1;
  JobPrecision Precision = JobPrecision::Fp32;
  /// Smaller = more urgent (see JobRequest::Priority).
  unsigned Priority = 1;
  /// Relative draw weight within the mix (> 0).
  double Weight = 1.0;
  /// Deadline = arrival + DeadlineSlack * full-machine service estimate;
  /// 0 disables the deadline.
  double DeadlineSlack = 0.0;
  /// Operation drawn for this entry (plain FFT or FFT-based conv2d).
  JobKind Kind = JobKind::Fft2d;
  /// Sample domain (real rides the packed half-spectrum path).
  JobInput Input = JobInput::Complex;
};

/// The standard mixed workload of the serving experiments: urgent
/// single-frame 2048^2 requests alongside heavyweight 4096^2 batches.
std::vector<JobTemplate> mixedWorkloadTemplates();

/// The convolution serving mix: real-input conv2d frames (the
/// image-filtering workload) alongside the interactive FFT classes -
/// conv jobs get their own SLO class in the run summaries.
std::vector<JobTemplate> convWorkloadTemplates();

/// Pull-based arrival source: the fleet simulator draws one arrival at a
/// time, so a 10^6-job open-loop run never materializes the whole trace
/// (memory stays flat in the run length).
class ArrivalStream {
public:
  virtual ~ArrivalStream() = default;

  /// Restores the initial state so the same object replays the identical
  /// stream.
  virtual void reset() = 0;

  /// Produces the next arrival into \p Job; false when exhausted.
  /// Arrivals come out in non-decreasing arrival-time order.
  virtual bool next(JobRequest &Job) = 0;
};

/// Streaming Poisson process over a weighted template mix: exponential
/// inter-arrival gaps at \p RatePerSec offered jobs per second, one
/// (gap, template[, tenant]) draw sequence per job off a single seeded
/// Rng. generatePoissonTrace() is this stream drained into a vector, so
/// streamed and materialized runs see byte-identical jobs.
class PoissonArrivalStream final : public ArrivalStream {
public:
  /// With \p NumTenants > 0 every job additionally draws a uniform
  /// tenant id in [1, NumTenants]; 0 leaves jobs untenanted and keeps
  /// the draw sequence of the pre-tenant trace format.
  PoissonArrivalStream(std::vector<JobTemplate> Mix, std::uint64_t NumJobs,
                       double RatePerSec, std::uint64_t Seed,
                       const ServiceModel &Model, unsigned NumTenants = 0);

  void reset() override;
  bool next(JobRequest &Job) override;

  std::uint64_t totalJobs() const { return NumJobs; }
  std::uint64_t produced() const { return Produced; }

private:
  std::vector<JobTemplate> Mix;
  std::uint64_t NumJobs;
  double MeanGapPicos;
  std::uint64_t Seed;
  const ServiceModel &Model;
  unsigned NumTenants;
  Rng Random;
  Picos Now = 0;
  std::uint64_t Produced = 0;
};

/// Draws \p NumJobs jobs from \p Mix with Poisson (exponential
/// inter-arrival) timing at \p RatePerSec offered jobs per second.
/// Deadlines are assigned from \p Model 's full-machine estimates. Ids
/// are 1..NumJobs in arrival order.
std::vector<JobRequest> generatePoissonTrace(const std::vector<JobTemplate> &Mix,
                                             unsigned NumJobs,
                                             double RatePerSec,
                                             std::uint64_t Seed,
                                             const ServiceModel &Model);

/// Parses a line-oriented job-trace text into \p Out (ids assigned 1..
/// in line order). Grammar, one job per line, '#' starts a comment:
///
///   job at <ms> n <N> [frames <F>] [fp16] [conv2d] [real] [prio <P>]
///       [deadline <ms>] [tenant <T>]
///
/// Arrivals must be non-decreasing, <N> a power of two, a deadline (an
/// absolute time) after the arrival. Returns false and a line-numbered
/// message in \p Error on the first malformed line; \p Out is then left
/// unchanged.
bool parseJobTrace(const std::string &Text, std::vector<JobRequest> &Out,
                   std::string *Error = nullptr);

/// Interface the simulator pulls arrivals through.
class Workload {
public:
  virtual ~Workload() = default;

  /// Restores the initial state so the same object replays the identical
  /// workload for the next policy.
  virtual void reset() = 0;

  /// Arrivals known at time zero (ascending arrival times).
  virtual std::vector<JobRequest> initialJobs() = 0;

  /// Response hook, called when \p Job completes or is shed at \p Now;
  /// returns follow-up arrivals (times >= \p Now). Open-loop workloads
  /// return nothing.
  virtual std::vector<JobRequest> onResponse(const JobRequest &Job,
                                             Picos Now) = 0;
};

/// Open loop: replays a pre-generated trace.
class TraceWorkload final : public Workload {
public:
  explicit TraceWorkload(std::vector<JobRequest> Trace)
      : Trace(std::move(Trace)) {}

  void reset() override {}
  std::vector<JobRequest> initialJobs() override { return Trace; }
  std::vector<JobRequest> onResponse(const JobRequest &, Picos) override {
    return {};
  }

private:
  std::vector<JobRequest> Trace;
};

/// Closed loop: \p NumClients clients, each issuing \p JobsPerClient
/// requests with exponential think time between response and next
/// request.
class ClosedLoopWorkload final : public Workload {
public:
  ClosedLoopWorkload(std::vector<JobTemplate> Mix, unsigned NumClients,
                     unsigned JobsPerClient, Picos MeanThinkTime,
                     std::uint64_t Seed, const ServiceModel &Model);

  void reset() override;
  std::vector<JobRequest> initialJobs() override;
  std::vector<JobRequest> onResponse(const JobRequest &Job,
                                     Picos Now) override;

  /// Total jobs the population will issue.
  std::uint64_t totalJobs() const {
    return static_cast<std::uint64_t>(NumClients) * JobsPerClient;
  }

private:
  JobRequest makeJob(std::uint64_t ClientId, Picos Arrival);
  Picos thinkTime(std::uint64_t ClientId);

  std::vector<JobTemplate> Mix;
  unsigned NumClients;
  unsigned JobsPerClient;
  Picos MeanThinkTime;
  std::uint64_t Seed;
  const ServiceModel &Model;
  std::vector<Rng> ClientRngs;
  std::vector<unsigned> Issued;
  std::uint64_t NextId = 1;
};

} // namespace fft3d

#endif // FFT3D_SERVE_WORKLOAD_H
