//===- serve/HealthMonitor.h - Device health for the serving loop -*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's view of device health under fault injection: how
/// many vaults are grantable right now, how much thermal throttling slows
/// a dispatched job, and whether a particular dispatch attempt transiently
/// fails (and must be retried with backoff). A monitor without a fault
/// spec answers "everything is healthy" at zero cost, preserving the
/// fault-free serving behaviour bit for bit.
///
/// All answers delegate to the same FaultInjector the memory model uses,
/// so the scheduler and the memory timing agree on when a vault died.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_HEALTHMONITOR_H
#define FFT3D_SERVE_HEALTHMONITOR_H

#include "cluster/StackDispatch.h"
#include "fault/FaultInjector.h"
#include "obs/Metrics.h"

#include <cstdint>
#include <memory>

namespace fft3d {

/// Exponential-backoff retry policy for transiently failed jobs.
struct RetryPolicy {
  /// Total dispatch attempts per job (first try + retries).
  unsigned MaxAttempts = 4;
  /// Backoff before retry k is InitialBackoff * BackoffFactor^k, capped.
  Picos InitialBackoff = PicosPerMilli;
  unsigned BackoffFactor = 2;
  Picos MaxBackoff = 16 * PicosPerMilli;

  /// Backoff to wait before re-queueing attempt \p NextAttempt (>= 1).
  Picos backoffFor(unsigned NextAttempt) const;
};

/// Brownout policy: when the deadline-miss rate over a sliding window of
/// recent completions crosses EnterMissRate, admission sheds every
/// arrival at or below the priority floor until the rate recovers below
/// ExitMissRate (hysteresis keeps the mode from flapping).
struct BrownoutPolicy {
  bool Enabled = false;
  double EnterMissRate = 0.5;
  double ExitMissRate = 0.25;
  /// Sliding-window length, in deadline-carrying completions.
  std::size_t Window = 32;
  /// Jobs with Priority >= PriorityFloor (lower value = more urgent) are
  /// shed during brownout.
  unsigned PriorityFloor = 2;
};

class ClusterFaultInjector;

/// Health oracle for one serving run. Doubles as the cluster layer's
/// StackHealthSource so a fleet front-end's dispatch endpoints can feed
/// directly off the same fault timelines the memory model uses.
class HealthMonitor : public StackHealthSource {
public:
  /// \p Spec may be null (always healthy); \p NumVaults is the device's
  /// vault count. The serving fleet has \p NumStacks stacks: with more
  /// than one, the vault view is the spec's fleet-wide scope (directives
  /// outside any `stack <i>` section) and cluster-level stack/partition
  /// faults additionally gate whole stacks out of the dispatchable
  /// capacity.
  HealthMonitor(std::shared_ptr<const FaultSpec> Spec, unsigned NumVaults,
                unsigned NumStacks = 1);

  ~HealthMonitor() override;

  /// True when a non-empty fault spec is attached.
  bool active() const { return Injector != nullptr || Cluster != nullptr; }

  unsigned numVaults() const { return NumVaults; }

  unsigned numStacks() const { return NumStacks; }

  /// Stacks the dispatcher may route to at \p Now (all of them without
  /// cluster faults).
  unsigned healthyStacks(Picos Now) const;

  /// True when \p Stack is dead or partitioned off at \p Now.
  bool stackOffline(unsigned Stack, Picos Now) const;

  /// StackHealthSource: a stack the fleet router may dispatch to.
  bool stackUsable(unsigned Stack, Picos Now) const override {
    return !stackOffline(Stack, Now);
  }

  /// StackHealthSource: monotone per-stack health-transition counter
  /// (0 without cluster faults). Plan-cache entries derived from the
  /// stack's health are keyed by this epoch, so a stack_fail
  /// automatically orphans every estimate planned for the old health.
  std::uint64_t stackHealthEpoch(unsigned Stack, Picos Now) const override;

  /// Vaults the scheduler may grant at \p Now.
  unsigned healthyVaults(Picos Now) const;

  /// Service-time multiplier (>= 1) from thermal throttling at \p Now.
  /// Vault losses are not folded in here - the scheduler already models
  /// them by granting fewer vaults.
  double throttleSlowdown(Picos Now) const;

  /// Mean available-bandwidth fraction at \p Now (healthy/total x
  /// throttle), for capacity reporting.
  double capacityFactor(Picos Now) const;

  /// True when dispatch attempt \p Attempt of job \p JobId transiently
  /// fails. Deterministic in (spec seed, JobId, Attempt).
  bool jobTransientlyFails(std::uint64_t JobId, unsigned Attempt) const;

  /// Sets the "health.*" gauges in \p Registry to this monitor's view of
  /// the device at \p Now.
  void exportTo(MetricsRegistry &Registry, Picos Now) const;

private:
  std::shared_ptr<const FaultSpec> Spec;
  unsigned NumVaults;
  unsigned NumStacks;
  std::unique_ptr<FaultInjector> Injector;
  std::unique_ptr<ClusterFaultInjector> Cluster;
};

} // namespace fft3d

#endif // FFT3D_SERVE_HEALTHMONITOR_H
