//===- serve/JobRequest.h - One tenant's 2D FFT request ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of work the serving layer schedules: one tenant asks for an
/// N x N 2D FFT (optionally a multi-frame batch of them) at a given
/// precision, with a priority class and an optional completion deadline.
/// Requests are pure data - service-time estimation lives in
/// serve/ServiceModel, scheduling in serve/Scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_JOBREQUEST_H
#define FFT3D_SERVE_JOBREQUEST_H

#include "support/Units.h"

#include <cstdint>

namespace fft3d {

/// Element precision of a request. The hardware streams 64-bit complex
/// words; half precision packs two elements per word, halving the memory
/// traffic of both phases.
enum class JobPrecision { Fp32, Fp16 };

const char *jobPrecisionName(JobPrecision P);

/// Operation the request asks for: a plain 2D FFT, or an FFT-based 2D
/// circular convolution (forward transform, pointwise spectral multiply,
/// inverse transform) - the image-filtering job type. Convolution frames
/// do not pipeline: the pointwise stage is a barrier between the
/// forward and inverse transforms of each frame.
enum class JobKind { Fft2d, Conv2d };

const char *jobKindName(JobKind K);

/// Sample domain of the request. Real-input jobs run the irredundant
/// half-spectrum path: every phase moves half the bytes of the complex
/// path, so they are priced at half the service time.
enum class JobInput { Complex, Real };

const char *jobInputName(JobInput I);

/// One 2D-FFT service request.
struct JobRequest {
  /// Unique, monotonically increasing id (assigned by the workload
  /// generator; also the FCFS tiebreaker).
  std::uint64_t Id = 0;

  /// Problem size: an N x N complex matrix per frame. Power of two.
  std::uint64_t N = 2048;

  /// Frames in the request (>= 1); multi-frame requests pipeline through
  /// the double-buffered batch path.
  unsigned Frames = 1;

  JobPrecision Precision = JobPrecision::Fp32;

  /// Operation class; Conv2d requests carry their own SLO class in the
  /// serving reports.
  JobKind Kind = JobKind::Fft2d;

  /// Sample domain (real rides the packed half-spectrum path).
  JobInput Input = JobInput::Complex;

  /// Priority class; SMALLER values are MORE urgent (0 = highest).
  unsigned Priority = 1;

  /// Absolute arrival timestamp.
  Picos Arrival = 0;

  /// Absolute completion deadline; 0 means "no deadline".
  Picos Deadline = 0;

  /// Issuing client, for closed-loop workloads (0 for open-loop traces).
  std::uint64_t ClientId = 0;

  /// Owning tenant, for fleet-level routing and quotas (0 = untenanted;
  /// single-device serving ignores it).
  std::uint64_t Tenant = 0;

  /// Dispatch attempt number (0 = first try). Bumped by the serving loop
  /// when a transient fault fails the job and it re-enters with backoff.
  unsigned Attempt = 0;

  /// Complex elements the request moves per phase (frames x N x N).
  std::uint64_t totalElements() const {
    return static_cast<std::uint64_t>(Frames) * N * N;
  }

  bool hasDeadline() const { return Deadline != 0; }
};

} // namespace fft3d

#endif // FFT3D_SERVE_JOBREQUEST_H
