//===- serve/Scheduler.h - Pluggable job scheduling policies ----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides which pending job runs next and on how many vaults. The
/// simulator calls selectNext() after every arrival and completion until
/// the policy declines; each grant is a (queue index, vault share) pair.
///
/// Time-sharing policies (FCFS, SJF, priority-with-aging) run one job at
/// a time on the whole device: one streaming-kernel pair, all n_v vaults,
/// the configuration the paper evaluates. The space-sharing policy
/// partitions the vaults into equal shares and runs up to P jobs
/// concurrently, each with its own Eq. 1 block plan for its share -
/// profitable exactly when the kernel's stream rate, not vault
/// bandwidth, bounds a full-machine job, so a share serves a job at
/// nearly full speed while the queue drains P at a time.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_SCHEDULER_H
#define FFT3D_SERVE_SCHEDULER_H

#include "serve/JobQueue.h"
#include "serve/ServiceModel.h"

#include <memory>
#include <optional>

namespace fft3d {

/// The built-in policies.
enum class PolicyKind {
  /// First come, first served, whole machine per job.
  Fcfs,
  /// Shortest (estimated full-machine service time) first.
  Sjf,
  /// Smallest priority value first; waiting jobs gain urgency over time
  /// so low classes cannot starve.
  PriorityAging,
  /// Vault-partitioned space sharing: P equal vault shares, FCFS within.
  VaultPartition,
};

const char *policyKindName(PolicyKind Kind);

/// One scheduling grant.
struct DispatchDecision {
  /// Index into the pending queue (0 = oldest).
  std::size_t QueueIndex = 0;
  /// Vaults granted to the job.
  unsigned Vaults = 0;
};

/// Interface all policies implement. Implementations must be
/// deterministic: the same queue/machine state always yields the same
/// grant (ties break by arrival order, then id).
class SchedulerPolicy {
public:
  virtual ~SchedulerPolicy() = default;

  virtual const char *name() const = 0;

  /// Picks the next job to launch, or std::nullopt to leave the machine
  /// as is. \p FreeVaults of \p TotalVaults are currently unused.
  virtual std::optional<DispatchDecision>
  selectNext(const JobQueue &Queue, unsigned FreeVaults,
             unsigned TotalVaults, Picos Now, const ServiceModel &Model) = 0;
};

/// Tuning knobs for the built-in policies.
struct PolicyOptions {
  /// PriorityAging: waiting this long raises a job's urgency by one
  /// whole priority class.
  Picos AgingQuantum = 10 * PicosPerMilli;
  /// VaultPartition: number of equal vault shares (>= 1).
  unsigned Partitions = 2;
};

/// Constructs a policy instance.
std::unique_ptr<SchedulerPolicy>
createPolicy(PolicyKind Kind, const PolicyOptions &Options = PolicyOptions());

} // namespace fft3d

#endif // FFT3D_SERVE_SCHEDULER_H
