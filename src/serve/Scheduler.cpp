//===- serve/Scheduler.cpp - Pluggable job scheduling policies ------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/Scheduler.h"

#include "support/ErrorHandling.h"

using namespace fft3d;

const char *fft3d::policyKindName(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::Fcfs:
    return "fcfs";
  case PolicyKind::Sjf:
    return "sjf";
  case PolicyKind::PriorityAging:
    return "prio-aging";
  case PolicyKind::VaultPartition:
    return "vault-part";
  }
  return "?";
}

namespace {

/// FCFS on the whole machine: dispatch the oldest job when idle.
class FcfsPolicy final : public SchedulerPolicy {
public:
  const char *name() const override { return policyKindName(PolicyKind::Fcfs); }

  std::optional<DispatchDecision>
  selectNext(const JobQueue &Queue, unsigned FreeVaults,
             unsigned TotalVaults, Picos, const ServiceModel &) override {
    if (Queue.empty() || FreeVaults < TotalVaults)
      return std::nullopt;
    return DispatchDecision{0, TotalVaults};
  }
};

/// Shortest estimated full-machine service time first (non-preemptive).
class SjfPolicy final : public SchedulerPolicy {
public:
  const char *name() const override { return policyKindName(PolicyKind::Sjf); }

  std::optional<DispatchDecision>
  selectNext(const JobQueue &Queue, unsigned FreeVaults,
             unsigned TotalVaults, Picos,
             const ServiceModel &Model) override {
    if (Queue.empty() || FreeVaults < TotalVaults)
      return std::nullopt;
    std::size_t Best = 0;
    Picos BestTime = Model.fullMachineServiceTime(Queue.at(0));
    for (std::size_t I = 1; I != Queue.size(); ++I) {
      const Picos Time = Model.fullMachineServiceTime(Queue.at(I));
      // Strict < keeps ties in arrival order.
      if (Time < BestTime) {
        Best = I;
        BestTime = Time;
      }
    }
    return DispatchDecision{Best, TotalVaults};
  }
};

/// Smallest priority value first; urgency grows by one class per
/// AgingQuantum of waiting, so a starving background job eventually
/// outranks fresh foreground traffic.
class PriorityAgingPolicy final : public SchedulerPolicy {
public:
  explicit PriorityAgingPolicy(Picos AgingQuantum) : Quantum(AgingQuantum) {
    if (Quantum == 0)
      reportFatalError("aging quantum must be positive");
  }

  const char *name() const override {
    return policyKindName(PolicyKind::PriorityAging);
  }

  std::optional<DispatchDecision>
  selectNext(const JobQueue &Queue, unsigned FreeVaults,
             unsigned TotalVaults, Picos Now,
             const ServiceModel &) override {
    if (Queue.empty() || FreeVaults < TotalVaults)
      return std::nullopt;
    std::size_t Best = 0;
    double BestUrgency = effective(Queue.at(0), Now);
    for (std::size_t I = 1; I != Queue.size(); ++I) {
      const double Urgency = effective(Queue.at(I), Now);
      if (Urgency < BestUrgency) {
        Best = I;
        BestUrgency = Urgency;
      }
    }
    return DispatchDecision{Best, TotalVaults};
  }

private:
  double effective(const JobRequest &Job, Picos Now) const {
    const Picos Waited = Now >= Job.Arrival ? Now - Job.Arrival : 0;
    return static_cast<double>(Job.Priority) -
           static_cast<double>(Waited) / static_cast<double>(Quantum);
  }

  Picos Quantum;
};

/// Equal vault shares, FCFS within: up to P jobs run concurrently, each
/// on TotalVaults/P vaults with its own block plan.
class VaultPartitionPolicy final : public SchedulerPolicy {
public:
  explicit VaultPartitionPolicy(unsigned Partitions) : Parts(Partitions) {
    if (Parts == 0)
      reportFatalError("partition count must be positive");
  }

  const char *name() const override {
    return policyKindName(PolicyKind::VaultPartition);
  }

  std::optional<DispatchDecision>
  selectNext(const JobQueue &Queue, unsigned FreeVaults,
             unsigned TotalVaults, Picos, const ServiceModel &) override {
    const unsigned Share = std::max(1u, TotalVaults / Parts);
    if (Queue.empty() || FreeVaults < Share)
      return std::nullopt;
    return DispatchDecision{0, Share};
  }

private:
  unsigned Parts;
};

} // namespace

std::unique_ptr<SchedulerPolicy>
fft3d::createPolicy(PolicyKind Kind, const PolicyOptions &Options) {
  switch (Kind) {
  case PolicyKind::Fcfs:
    return std::make_unique<FcfsPolicy>();
  case PolicyKind::Sjf:
    return std::make_unique<SjfPolicy>();
  case PolicyKind::PriorityAging:
    return std::make_unique<PriorityAgingPolicy>(Options.AgingQuantum);
  case PolicyKind::VaultPartition:
    return std::make_unique<VaultPartitionPolicy>(Options.Partitions);
  }
  reportFatalError("unknown policy kind");
}
