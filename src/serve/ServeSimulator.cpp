//===- serve/ServeSimulator.cpp - Multi-tenant serving loop ---------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeSimulator.h"

#include "sim/EventQueue.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <map>

using namespace fft3d;

ServeSimulator::ServeSimulator(const ServeConfig &Config,
                               const ServiceModel &Model)
    : Config(Config), Model(Model) {}

namespace {

/// Mutable state of one run, shared by the event callbacks.
struct RunState {
  EventQueue Events;
  JobQueue Queue;
  AdmissionController Admission;
  SloTracker Tracker;
  /// Vaults currently granted to running jobs.
  unsigned BusyVaults = 0;
  /// Completion times of running jobs, for the admission backlog
  /// estimate.
  std::map<std::uint64_t, Picos> Running;
  unsigned PeakConcurrency = 0;

  RunState(std::size_t QueueCapacity, bool ShedInfeasible)
      : Queue(QueueCapacity), Admission(ShedInfeasible) {}
};

} // namespace

ServeResult ServeSimulator::run(Workload &Load, SchedulerPolicy &Policy) {
  Load.reset();
  RunState State(Config.QueueCapacity, Config.ShedInfeasible);
  const unsigned TotalVaults = Model.totalVaults();

  // The three mutually recursive event handlers.
  std::function<void()> TrySchedule;
  std::function<void(JobRequest)> Arrive;

  auto ScheduleArrival = [&](const JobRequest &Job) {
    State.Events.scheduleAt(Job.Arrival, [&, Job] { Arrive(Job); });
  };

  TrySchedule = [&] {
    while (true) {
      const Picos Now = State.Events.now();
      const auto Decision = Policy.selectNext(
          State.Queue, TotalVaults - State.BusyVaults, TotalVaults, Now,
          Model);
      if (!Decision)
        return;
      if (Decision->Vaults == 0 ||
          Decision->Vaults > TotalVaults - State.BusyVaults)
        reportFatalError("policy granted more vaults than are free");
      const JobRequest Job = State.Queue.take(Decision->QueueIndex);
      const Picos Service = Model.serviceTime(Job, Decision->Vaults);
      State.BusyVaults += Decision->Vaults;
      State.PeakConcurrency = std::max(
          State.PeakConcurrency,
          static_cast<unsigned>(State.Running.size()) + 1);
      const Picos Complete = Now + Service;
      State.Running.emplace(Job.Id, Complete);
      const unsigned Vaults = Decision->Vaults;
      State.Events.scheduleAt(Complete, [&, Job, Now, Vaults, Complete] {
        State.BusyVaults -= Vaults;
        State.Running.erase(Job.Id);
        State.Tracker.recordCompletion({Job, Now, Complete, Vaults});
        for (const JobRequest &Next :
             Load.onResponse(Job, State.Events.now()))
          ScheduleArrival(Next);
        TrySchedule();
      });
    }
  };

  Arrive = [&](JobRequest Job) {
    const Picos Now = State.Events.now();
    // Backlog: time until the machine could plausibly start this job -
    // running remainders plus the queued jobs' full-machine estimates.
    Picos Backlog = 0;
    for (const auto &[Id, Complete] : State.Running)
      Backlog += Complete > Now ? Complete - Now : 0;
    for (std::size_t I = 0; I != State.Queue.size(); ++I)
      Backlog += Model.fullMachineServiceTime(State.Queue.at(I));
    const Picos EstService = Model.fullMachineServiceTime(Job);

    const AdmissionDecision Decision =
        State.Admission.decide(Job, State.Queue, Now, Backlog, EstService);
    if (Decision == AdmissionDecision::Admit) {
      State.Queue.push(Job);
      TrySchedule();
    } else {
      State.Tracker.recordShed(Job, Decision);
      // A shed is still a response: closed-loop clients move on.
      for (const JobRequest &Next : Load.onResponse(Job, Now))
        ScheduleArrival(Next);
    }
  };

  for (const JobRequest &Job : Load.initialJobs())
    ScheduleArrival(Job);
  State.Events.run();

  if (State.BusyVaults != 0 || !State.Running.empty() ||
      !State.Queue.empty())
    reportFatalError("serving run drained with work still in flight");

  ServeResult Result;
  Result.PolicyName = Policy.name();
  Result.EndTime = State.Events.now();
  Result.Summary = State.Tracker.summarize(Result.EndTime);
  Result.Tracker = State.Tracker;
  Result.ShedQueueFull = State.Admission.shedQueueFull();
  Result.ShedInfeasible = State.Admission.shedInfeasible();
  Result.PeakConcurrency = State.PeakConcurrency;
  return Result;
}
