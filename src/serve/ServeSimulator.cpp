//===- serve/ServeSimulator.cpp - Multi-tenant serving loop ---------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeSimulator.h"

#include "sim/EventQueue.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <deque>
#include <map>

using namespace fft3d;

ServeSimulator::ServeSimulator(const ServeConfig &Config,
                               const ServiceModel &Model)
    : Config(Config), Model(Model) {}

namespace {

/// Mutable state of one run, shared by the event callbacks.
struct RunState {
  EventQueue Events;
  JobQueue Queue;
  AdmissionController Admission;
  SloTracker Tracker;
  /// Vaults currently granted to running jobs.
  unsigned BusyVaults = 0;
  /// Completion times of running jobs, for the admission backlog
  /// estimate.
  std::map<std::uint64_t, Picos> Running;
  unsigned PeakConcurrency = 0;
  /// Sliding window of deadline outcomes (true = missed) driving
  /// brownout entry/exit.
  std::deque<bool> MissWindow;
  std::uint64_t BrownoutEpisodes = 0;
  /// A delayed re-poll is pending (armed when work is queued but no
  /// vault is healthy and nothing is running - a completion cannot
  /// re-trigger scheduling, so a recovery must be polled for).
  bool RepollArmed = false;

  RunState(std::size_t QueueCapacity, bool ShedInfeasible)
      : Queue(QueueCapacity), Admission(ShedInfeasible) {}
};

} // namespace

ServeResult ServeSimulator::run(Workload &Load, SchedulerPolicy &Policy) {
  Load.reset();
  RunState State(Config.QueueCapacity, Config.ShedInfeasible);
  const unsigned TotalVaults = Model.totalVaults();
  Tracer *Trace = Config.Trace;
  const std::uint32_t Pid = Config.TracePid;
  if (Trace)
    Trace->setProcessName(Pid, "serve " + std::string(Policy.name()));
  // Job events land on the client's track so tenants separate visually.
  auto JobTid = [](const JobRequest &Job) {
    return static_cast<std::uint32_t>(Job.ClientId);
  };
  const HealthMonitor *Health =
      Config.Health && Config.Health->active() ? Config.Health.get()
                                               : nullptr;

  // The three mutually recursive event handlers.
  std::function<void()> TrySchedule;
  std::function<void(JobRequest)> Arrive;

  auto ScheduleArrival = [&](const JobRequest &Job) {
    State.Events.scheduleAt(Job.Arrival, [&, Job] { Arrive(Job); });
  };

  // Re-checks the brownout mode after a deadline-carrying completion.
  auto UpdateBrownout = [&](bool Missed) {
    if (!Config.Brownout.Enabled)
      return;
    State.MissWindow.push_back(Missed);
    if (State.MissWindow.size() > Config.Brownout.Window)
      State.MissWindow.pop_front();
    if (State.MissWindow.size() < Config.Brownout.Window)
      return;
    const double MissRate =
        static_cast<double>(std::count(State.MissWindow.begin(),
                                       State.MissWindow.end(), true)) /
        static_cast<double>(State.MissWindow.size());
    if (!State.Admission.inBrownout() &&
        MissRate >= Config.Brownout.EnterMissRate) {
      State.Admission.setBrownout(true, Config.Brownout.PriorityFloor);
      ++State.BrownoutEpisodes;
      if (Trace && Trace->wants(TraceCatServe))
        Trace->instant(TraceCatServe, "brownout_enter", Pid, /*Tid=*/0,
                       State.Events.now());
    } else if (State.Admission.inBrownout() &&
               MissRate <= Config.Brownout.ExitMissRate) {
      State.Admission.setBrownout(false, Config.Brownout.PriorityFloor);
      if (Trace && Trace->wants(TraceCatServe))
        Trace->instant(TraceCatServe, "brownout_exit", Pid, /*Tid=*/0,
                       State.Events.now());
    }
  };

  TrySchedule = [&] {
    while (true) {
      const Picos Now = State.Events.now();
      // Under fault injection, only the currently healthy vaults are
      // grantable; jobs already running on a vault that dies finish at
      // their estimated time (their data was remapped by the memory
      // layer), but no new grant may use it.
      unsigned Avail = TotalVaults;
      if (Health)
        Avail = std::min(Avail, Health->healthyVaults(Now));
      const unsigned Free =
          Avail > State.BusyVaults ? Avail - State.BusyVaults : 0;
      // The policy sees the degraded machine as the whole machine, so
      // "take everything" policies keep dispatching on the survivors and
      // partition shares shrink proportionally.
      std::optional<DispatchDecision> Decision;
      if (Avail != 0)
        Decision = Policy.selectNext(State.Queue, Free, Avail, Now, Model);
      if (!Decision) {
        // Full outage with nothing running: no completion will re-enter
        // the scheduler, so poll for the device's recovery.
        if (Avail == 0 && !State.Queue.empty() && State.Running.empty() &&
            !State.RepollArmed) {
          State.RepollArmed = true;
          State.Events.scheduleAt(Now + PicosPerMilli, [&] {
            State.RepollArmed = false;
            TrySchedule();
          });
        }
        return;
      }
      if (Decision->Vaults == 0 || Decision->Vaults > Free)
        reportFatalError("policy granted more vaults than are free");
      const JobRequest Job = State.Queue.take(Decision->QueueIndex);
      Picos Service = Model.serviceTime(Job, Decision->Vaults);
      bool Degraded = false;
      if (Health) {
        // Re-estimate at degraded capacity: thermal throttling stretches
        // the service time (the vault loss is already reflected in the
        // smaller grant), and a multi-stack fleet missing stacks prices
        // the survivors' extra share into every dispatch - routing
        // around the failed stacks costs the fleet that much throughput.
        double Slow = Health->throttleSlowdown(Now);
        const unsigned Stacks = Health->numStacks();
        const unsigned LiveStacks =
            std::max(1u, Health->healthyStacks(Now));
        if (Stacks > 1 && LiveStacks < Stacks)
          Slow *= static_cast<double>(Stacks) /
                  static_cast<double>(LiveStacks);
        if (Slow > 1.0)
          Service = static_cast<Picos>(
              static_cast<double>(Service) * Slow + 0.5);
        Degraded = Slow > 1.0 || Avail < TotalVaults;
      }
      State.BusyVaults += Decision->Vaults;
      State.PeakConcurrency = std::max(
          State.PeakConcurrency,
          static_cast<unsigned>(State.Running.size()) + 1);
      const unsigned Vaults = Decision->Vaults;

      if (Health && Health->jobTransientlyFails(Job.Id, Job.Attempt)) {
        // Transient fault: the job burns half its service time before
        // failing, then retries with capped exponential backoff (or is
        // dropped once the attempts are exhausted).
        const Picos FailAt = Now + std::max<Picos>(Service / 2, 1);
        if (Trace && Trace->wants(TraceCatFault))
          Trace->span(TraceCatFault, "job_failed_attempt", Pid, JobTid(Job),
                      Now, FailAt - Now, "job", Job.Id, "attempt",
                      Job.Attempt);
        State.Running.emplace(Job.Id, FailAt);
        State.Events.scheduleAt(FailAt, [&, Job, Vaults] {
          State.BusyVaults -= Vaults;
          State.Running.erase(Job.Id);
          const Picos FailNow = State.Events.now();
          if (Job.Attempt + 1 >= Config.Retry.MaxAttempts) {
            State.Tracker.recordShed(Job, AdmissionDecision::ShedFailed);
            if (Trace && Trace->wants(TraceCatServe))
              Trace->instant(TraceCatServe, "job_dropped", Pid, JobTid(Job),
                             FailNow, "job", Job.Id);
            for (const JobRequest &Next : Load.onResponse(Job, FailNow))
              ScheduleArrival(Next);
          } else {
            State.Tracker.recordRetry(Job);
            JobRequest Retry = Job;
            ++Retry.Attempt;
            Retry.Arrival =
                FailNow + Config.Retry.backoffFor(Retry.Attempt);
            if (Trace && Trace->wants(TraceCatServe))
              Trace->instant(TraceCatServe, "job_retry", Pid, JobTid(Job),
                             FailNow, "job", Job.Id, "attempt",
                             Retry.Attempt);
            ScheduleArrival(Retry);
          }
          TrySchedule();
        });
        continue;
      }

      const Picos Complete = Now + Service;
      if (Trace && Trace->wants(TraceCatServe))
        Trace->span(TraceCatServe, "job", Pid, JobTid(Job), Now, Service,
                    "job", Job.Id, "vaults", Vaults);
      State.Running.emplace(Job.Id, Complete);
      State.Events.scheduleAt(
          Complete, [&, Job, Now, Vaults, Complete, Degraded] {
            State.BusyVaults -= Vaults;
            State.Running.erase(Job.Id);
            State.Tracker.recordCompletion(
                {Job, Now, Complete, Vaults, Degraded});
            if (Job.hasDeadline())
              UpdateBrownout(Complete > Job.Deadline);
            for (const JobRequest &Next :
                 Load.onResponse(Job, State.Events.now()))
              ScheduleArrival(Next);
            TrySchedule();
          });
    }
  };

  Arrive = [&](JobRequest Job) {
    const Picos Now = State.Events.now();
    // Backlog: time until the machine could plausibly start this job -
    // running remainders plus the queued jobs' full-machine estimates.
    Picos Backlog = 0;
    for (const auto &[Id, Complete] : State.Running)
      Backlog += Complete > Now ? Complete - Now : 0;
    for (std::size_t I = 0; I != State.Queue.size(); ++I)
      Backlog += Model.fullMachineServiceTime(State.Queue.at(I));
    const Picos EstService = Model.fullMachineServiceTime(Job);

    if (Trace && Trace->wants(TraceCatServe))
      Trace->instant(TraceCatServe, "job_arrive", Pid, JobTid(Job), Now,
                     "job", Job.Id, "n", Job.N);
    const AdmissionDecision Decision =
        State.Admission.decide(Job, State.Queue, Now, Backlog, EstService);
    if (Decision == AdmissionDecision::Admit) {
      State.Queue.push(Job);
      TrySchedule();
    } else {
      State.Tracker.recordShed(Job, Decision);
      if (Trace && Trace->wants(TraceCatServe))
        Trace->instant(TraceCatServe, "job_shed", Pid, JobTid(Job), Now,
                       "job", Job.Id, "reason",
                       static_cast<std::uint64_t>(Decision));
      // A shed is still a response: closed-loop clients move on.
      for (const JobRequest &Next : Load.onResponse(Job, Now))
        ScheduleArrival(Next);
    }
  };

  for (const JobRequest &Job : Load.initialJobs())
    ScheduleArrival(Job);
  State.Events.run();

  if (State.BusyVaults != 0 || !State.Running.empty() ||
      !State.Queue.empty())
    reportFatalError("serving run drained with work still in flight");

  ServeResult Result;
  Result.PolicyName = Policy.name();
  Result.EndTime = State.Events.now();
  Result.Summary = State.Tracker.summarize(Result.EndTime);
  Result.Tracker = State.Tracker;
  Result.ShedQueueFull = State.Admission.shedQueueFull();
  Result.ShedInfeasible = State.Admission.shedInfeasible();
  Result.ShedBrownout = State.Admission.shedBrownout();
  Result.PeakConcurrency = State.PeakConcurrency;
  Result.BrownoutEpisodes = State.BrownoutEpisodes;
  return Result;
}
