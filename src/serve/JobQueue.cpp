//===- serve/JobQueue.cpp - Bounded queue of pending requests -------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/JobQueue.h"

#include "support/ErrorHandling.h"

using namespace fft3d;

JobQueue::JobQueue(std::size_t Capacity) : Cap(Capacity) {
  if (Capacity == 0)
    reportFatalError("job queue capacity must be positive");
}

void JobQueue::push(const JobRequest &Job) {
  if (full())
    reportFatalError("push into a full job queue (admission control must "
                     "shed first)");
  Pending.push_back(Job);
}

const JobRequest &JobQueue::at(std::size_t Index) const {
  if (Index >= Pending.size())
    reportFatalError("job queue index out of range");
  return Pending[Index];
}

JobRequest JobQueue::take(std::size_t Index) {
  if (Index >= Pending.size())
    reportFatalError("job queue index out of range");
  const JobRequest Job = Pending[Index];
  Pending.erase(Pending.begin() + static_cast<std::ptrdiff_t>(Index));
  return Job;
}

Picos JobQueue::oldestArrival() const {
  return Pending.empty() ? 0 : Pending.front().Arrival;
}

std::uint64_t JobQueue::pendingElements() const {
  std::uint64_t Total = 0;
  for (const JobRequest &Job : Pending)
    Total += Job.totalElements();
  return Total;
}
