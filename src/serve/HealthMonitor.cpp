//===- serve/HealthMonitor.cpp - Device health for the serving loop -------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/HealthMonitor.h"

#include <algorithm>

using namespace fft3d;

Picos RetryPolicy::backoffFor(unsigned NextAttempt) const {
  Picos Backoff = InitialBackoff;
  for (unsigned I = 1; I < NextAttempt; ++I) {
    if (Backoff >= MaxBackoff / std::max(1u, BackoffFactor))
      return MaxBackoff;
    Backoff *= BackoffFactor;
  }
  return std::min(Backoff, MaxBackoff);
}

HealthMonitor::HealthMonitor(std::shared_ptr<const FaultSpec> Spec,
                             unsigned NumVaults)
    : Spec(std::move(Spec)), NumVaults(NumVaults) {
  if (this->Spec && !this->Spec->empty())
    Injector = std::make_unique<FaultInjector>(*this->Spec, NumVaults);
}

unsigned HealthMonitor::healthyVaults(Picos Now) const {
  return Injector ? Injector->healthyVaults(Now) : NumVaults;
}

double HealthMonitor::throttleSlowdown(Picos Now) const {
  if (!Injector)
    return 1.0;
  // capacityFactor = (healthy/total) * (1 - duty); divide the vault term
  // back out so only the throttle remains.
  const unsigned Healthy = Injector->healthyVaults(Now);
  if (Healthy == 0)
    return 1.0;
  const double Throttle = Injector->capacityFactor(Now) *
                          static_cast<double>(NumVaults) /
                          static_cast<double>(Healthy);
  return Throttle > 0.0 && Throttle < 1.0 ? 1.0 / Throttle : 1.0;
}

double HealthMonitor::capacityFactor(Picos Now) const {
  return Injector ? Injector->capacityFactor(Now) : 1.0;
}

bool HealthMonitor::jobTransientlyFails(std::uint64_t JobId,
                                        unsigned Attempt) const {
  return Injector && Injector->jobTransientlyFails(JobId, Attempt);
}

void HealthMonitor::exportTo(MetricsRegistry &Registry, Picos Now) const {
  Registry.gauge("health.total_vaults").set(NumVaults);
  Registry.gauge("health.healthy_vaults").set(healthyVaults(Now));
  Registry.gauge("health.throttle_slowdown").set(throttleSlowdown(Now));
  Registry.gauge("health.capacity_factor").set(capacityFactor(Now));
}
