//===- serve/HealthMonitor.cpp - Device health for the serving loop -------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/HealthMonitor.h"

#include "fault/ClusterFaults.h"

#include <algorithm>

using namespace fft3d;

Picos RetryPolicy::backoffFor(unsigned NextAttempt) const {
  Picos Backoff = InitialBackoff;
  for (unsigned I = 1; I < NextAttempt; ++I) {
    if (Backoff >= MaxBackoff / std::max(1u, BackoffFactor))
      return MaxBackoff;
    Backoff *= BackoffFactor;
  }
  return std::min(Backoff, MaxBackoff);
}

HealthMonitor::HealthMonitor(std::shared_ptr<const FaultSpec> Spec,
                             unsigned NumVaults, unsigned NumStacks)
    : Spec(std::move(Spec)), NumVaults(NumVaults),
      NumStacks(std::max(1u, NumStacks)) {
  if (!this->Spec || this->Spec->empty())
    return;
  if (this->NumStacks > 1) {
    // Multi-stack fleet: the vault oracle answers for a representative
    // stack, so it sees only the fleet-wide (unscoped) directives;
    // cluster-level stack/partition faults get their own oracle.
    const FaultSpec Fleet = this->Spec->forStack(-1);
    if (!Fleet.empty())
      Injector = std::make_unique<FaultInjector>(Fleet, NumVaults);
    if (this->Spec->hasClusterFaults())
      Cluster = std::make_unique<ClusterFaultInjector>(
          *this->Spec, this->NumStacks, 2 * this->NumStacks);
  } else {
    Injector = std::make_unique<FaultInjector>(*this->Spec, NumVaults);
  }
}

HealthMonitor::~HealthMonitor() = default;

unsigned HealthMonitor::healthyVaults(Picos Now) const {
  return Injector ? Injector->healthyVaults(Now) : NumVaults;
}

unsigned HealthMonitor::healthyStacks(Picos Now) const {
  return Cluster ? Cluster->healthyStacks(Now) : NumStacks;
}

bool HealthMonitor::stackOffline(unsigned Stack, Picos Now) const {
  return Cluster && (Cluster->stackOffline(Stack, Now) ||
                     Cluster->stackPartitioned(Stack, Now));
}

std::uint64_t HealthMonitor::stackHealthEpoch(unsigned Stack,
                                              Picos Now) const {
  return Cluster ? Cluster->stackHealthEpoch(Stack, Now) : 0;
}

double HealthMonitor::throttleSlowdown(Picos Now) const {
  if (!Injector)
    return 1.0;
  // capacityFactor = (healthy/total) * (1 - duty); divide the vault term
  // back out so only the throttle remains.
  const unsigned Healthy = Injector->healthyVaults(Now);
  if (Healthy == 0)
    return 1.0;
  const double Throttle = Injector->capacityFactor(Now) *
                          static_cast<double>(NumVaults) /
                          static_cast<double>(Healthy);
  return Throttle > 0.0 && Throttle < 1.0 ? 1.0 / Throttle : 1.0;
}

double HealthMonitor::capacityFactor(Picos Now) const {
  double Factor = Injector ? Injector->capacityFactor(Now) : 1.0;
  if (Cluster)
    Factor *= static_cast<double>(Cluster->healthyStacks(Now)) /
              static_cast<double>(NumStacks);
  return Factor;
}

bool HealthMonitor::jobTransientlyFails(std::uint64_t JobId,
                                        unsigned Attempt) const {
  return Injector && Injector->jobTransientlyFails(JobId, Attempt);
}

void HealthMonitor::exportTo(MetricsRegistry &Registry, Picos Now) const {
  Registry.gauge("health.total_vaults").set(NumVaults);
  Registry.gauge("health.healthy_vaults").set(healthyVaults(Now));
  Registry.gauge("health.throttle_slowdown").set(throttleSlowdown(Now));
  Registry.gauge("health.capacity_factor").set(capacityFactor(Now));
  if (NumStacks > 1) {
    Registry.gauge("health.total_stacks").set(NumStacks);
    Registry.gauge("health.healthy_stacks").set(healthyStacks(Now));
  }
}
