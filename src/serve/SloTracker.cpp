//===- serve/SloTracker.cpp - Per-policy latency/SLO accounting -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/SloTracker.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cmath>

using namespace fft3d;

void SloTracker::recordCompletion(const JobOutcome &Outcome) {
  if (Outcome.CompleteTime < Outcome.DispatchTime ||
      Outcome.DispatchTime < Outcome.Job.Arrival)
    reportFatalError("job outcome timestamps out of order");
  Outcomes.push_back(Outcome);
}

void SloTracker::recordShed(const JobRequest &Job, AdmissionDecision Why) {
  if (Why == AdmissionDecision::Admit)
    reportFatalError("recordShed called with an admit decision");
  ShedJobs.push_back(Job);
  ShedReasons.push_back(Why);
}

void SloTracker::recordRetry(const JobRequest &Job) {
  (void)Job;
  ++NumRetries;
}

double SloTracker::percentile(std::vector<double> Samples, double Fraction) {
  if (Samples.empty())
    return 0.0;
  if (Fraction <= 0.0 || Fraction > 1.0)
    reportFatalError("percentile fraction must be in (0, 1]");
  std::sort(Samples.begin(), Samples.end());
  // Nearest rank: ceil(F * n), 1-based.
  const auto Rank = static_cast<std::size_t>(
      std::ceil(Fraction * static_cast<double>(Samples.size())));
  return Samples[std::max<std::size_t>(Rank, 1) - 1];
}

static double picosToMillis(Picos Duration) {
  return static_cast<double>(Duration) / static_cast<double>(PicosPerMilli);
}

SloSummary SloTracker::summarize(Picos End) const {
  SloSummary S;
  S.Completed = Outcomes.size();
  S.Shed = ShedJobs.size();
  S.Offered = S.Completed + S.Shed;
  if (S.Offered == 0)
    return S;
  S.ShedRate = static_cast<double>(S.Shed) / static_cast<double>(S.Offered);

  Picos FirstArrival = End;
  std::vector<double> LatencyMs, QueueMs, ConvLatencyMs;
  double ServiceSumMs = 0.0;
  std::uint64_t WithDeadline = 0, Missed = 0;
  std::uint64_t ConvWithDeadline = 0, ConvMissed = 0;
  for (const JobOutcome &O : Outcomes) {
    FirstArrival = std::min(FirstArrival, O.Job.Arrival);
    LatencyMs.push_back(picosToMillis(O.totalLatency()));
    QueueMs.push_back(picosToMillis(O.queueingDelay()));
    ServiceSumMs += picosToMillis(O.serviceTime());
    const bool Conv = O.Job.Kind == JobKind::Conv2d;
    if (Conv) {
      ++S.ConvOffered;
      ++S.ConvCompleted;
      ConvLatencyMs.push_back(picosToMillis(O.totalLatency()));
    }
    if (O.Job.hasDeadline()) {
      ++WithDeadline;
      if (Conv)
        ++ConvWithDeadline;
      if (O.missedDeadline()) {
        ++Missed;
        if (Conv)
          ++ConvMissed;
      }
    }
  }
  for (const JobRequest &J : ShedJobs) {
    FirstArrival = std::min(FirstArrival, J.Arrival);
    if (J.Kind == JobKind::Conv2d)
      ++S.ConvOffered;
    if (J.hasDeadline()) {
      ++WithDeadline;
      ++Missed;
      if (J.Kind == JobKind::Conv2d) {
        ++ConvWithDeadline;
        ++ConvMissed;
      }
    }
  }
  S.Retries = NumRetries;
  for (const AdmissionDecision Why : ShedReasons) {
    if (Why == AdmissionDecision::ShedBrownout)
      ++S.BrownoutSheds;
    else if (Why == AdmissionDecision::ShedFailed)
      ++S.FailedDropped;
  }
  for (const JobOutcome &O : Outcomes)
    if (O.Degraded)
      ++S.DegradedCompletions;

  if (S.Completed != 0) {
    S.HasLatencyStats = true;
    const Picos Makespan = End > FirstArrival ? End - FirstArrival : 0;
    if (Makespan != 0)
      S.ThroughputJobsPerSec = static_cast<double>(S.Completed) /
                               (static_cast<double>(Makespan) /
                                static_cast<double>(PicosPerSecond));
    S.P50LatencyMs = percentile(LatencyMs, 0.50);
    S.P95LatencyMs = percentile(LatencyMs, 0.95);
    S.P99LatencyMs = percentile(LatencyMs, 0.99);
    S.P50QueueMs = percentile(QueueMs, 0.50);
    S.P99QueueMs = percentile(QueueMs, 0.99);
    S.MeanServiceMs = ServiceSumMs / static_cast<double>(S.Completed);
  }
  if (WithDeadline != 0)
    S.DeadlineMissRate =
        static_cast<double>(Missed) / static_cast<double>(WithDeadline);
  if (S.ConvCompleted != 0)
    S.ConvP99LatencyMs = percentile(ConvLatencyMs, 0.99);
  if (ConvWithDeadline != 0)
    S.ConvDeadlineMissRate = static_cast<double>(ConvMissed) /
                             static_cast<double>(ConvWithDeadline);
  return S;
}

void SloTracker::exportTo(MetricsRegistry &Registry,
                          const std::string &Policy, Picos End) const {
  const SloSummary S = summarize(End);
  const MetricLabels L{{"policy", Policy}};
  Registry.counter("serve.offered", L).add(S.Offered);
  Registry.counter("serve.completed", L).add(S.Completed);
  Registry.counter("serve.shed", L).add(S.Shed);
  Registry.counter("serve.retries", L).add(S.Retries);
  Registry.counter("serve.failed_dropped", L).add(S.FailedDropped);
  Registry.counter("serve.brownout_sheds", L).add(S.BrownoutSheds);
  Registry.counter("serve.degraded_completions", L)
      .add(S.DegradedCompletions);
  // With zero completions the latency percentiles and throughput are
  // placeholders, not measurements: omit the gauges entirely so a
  // cold-start report has no "p99 = 0 ms" row for a dashboard (or an
  // autoscaler reading the registry) to mistake for a real latency.
  if (S.HasLatencyStats) {
    Registry.gauge("serve.throughput_jobs_per_sec", L)
        .set(S.ThroughputJobsPerSec);
    Registry.gauge("serve.p50_latency_ms", L).set(S.P50LatencyMs);
    Registry.gauge("serve.p99_latency_ms", L).set(S.P99LatencyMs);
  }
  Registry.gauge("serve.deadline_miss_rate", L).set(S.DeadlineMissRate);
  Registry.gauge("serve.shed_rate", L).set(S.ShedRate);
  if (S.ConvOffered != 0) {
    Registry.counter("serve.conv_offered", L).add(S.ConvOffered);
    Registry.counter("serve.conv_completed", L).add(S.ConvCompleted);
    if (S.ConvCompleted != 0)
      Registry.gauge("serve.conv_p99_latency_ms", L)
          .set(S.ConvP99LatencyMs);
    Registry.gauge("serve.conv_deadline_miss_rate", L)
        .set(S.ConvDeadlineMissRate);
  }
  MetricHistogram &Hist =
      Registry.histogram("serve.latency_ms", /*BucketWidth=*/1.0,
                         /*NumBuckets=*/256, L);
  for (const JobOutcome &O : Outcomes)
    Hist.observe(picosToMillis(O.totalLatency()));
}

void SloTracker::reset() {
  Outcomes.clear();
  ShedJobs.clear();
  ShedReasons.clear();
  NumRetries = 0;
}
