//===- serve/ServeSimulator.h - Multi-tenant serving loop -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving control loop, run as a discrete-event simulation on the
/// shared sim EventQueue: arrivals pass admission control into the
/// bounded JobQueue; after every arrival and completion the scheduler
/// policy is offered the machine until it declines; dispatched jobs
/// occupy their vault share for the ServiceModel's estimated service
/// time; completions notify the workload (closing the loop for
/// closed-loop tenants) and the SloTracker.
///
/// Everything downstream of the (workload, policy, seed) triple is
/// deterministic: events at equal timestamps run in insertion order and
/// all estimates are memoized measurements, so two runs of the same
/// configuration produce byte-identical reports.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_SERVESIMULATOR_H
#define FFT3D_SERVE_SERVESIMULATOR_H

#include "obs/Tracer.h"
#include "serve/AdmissionController.h"
#include "serve/HealthMonitor.h"
#include "serve/Scheduler.h"
#include "serve/SloTracker.h"
#include "serve/Workload.h"

#include <memory>
#include <string>

namespace fft3d {

/// Serving-layer configuration (the device itself comes from the
/// ServiceModel).
struct ServeConfig {
  /// Bounded pending-queue depth (backpressure point).
  std::size_t QueueCapacity = 64;
  /// Shed jobs whose deadline is already infeasible at arrival.
  bool ShedInfeasible = false;
  /// Device health oracle; null means always healthy (the fault-free
  /// behaviour is then bit-identical to a config without this field).
  std::shared_ptr<const HealthMonitor> Health;
  /// Retry policy for transiently failed dispatches (used only when
  /// Health is active).
  RetryPolicy Retry;
  /// Brownout shedding under sustained SLO misses.
  BrownoutPolicy Brownout;
  /// Timeline tracer for job-lifecycle events; null (the default)
  /// records nothing. Not thread-safe: trace one run at a time.
  Tracer *Trace = nullptr;
  /// Process track for this run's events (one pid per policy run).
  std::uint32_t TracePid = 1;
};

/// Outcome of one (workload, policy) run.
struct ServeResult {
  std::string PolicyName;
  SloSummary Summary;
  /// Full per-job record, for tests and detailed reporting.
  SloTracker Tracker;
  /// Simulation time when the last event ran.
  Picos EndTime = 0;
  std::uint64_t ShedQueueFull = 0;
  std::uint64_t ShedInfeasible = 0;
  std::uint64_t ShedBrownout = 0;
  /// Peak number of concurrently running jobs (1 for the time-sharing
  /// policies; up to P under vault partitioning).
  unsigned PeakConcurrency = 0;
  /// Number of times brownout mode was entered.
  std::uint64_t BrownoutEpisodes = 0;
};

/// Runs workloads against scheduling policies on one simulated device.
class ServeSimulator {
public:
  ServeSimulator(const ServeConfig &Config, const ServiceModel &Model);

  /// Simulates \p Workload under \p Policy to completion. Resets the
  /// workload first, so the same workload object can be replayed across
  /// policies.
  ServeResult run(Workload &Load, SchedulerPolicy &Policy);

private:
  ServeConfig Config;
  const ServiceModel &Model;
};

} // namespace fft3d

#endif // FFT3D_SERVE_SERVESIMULATOR_H
