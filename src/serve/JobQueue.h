//===- serve/JobQueue.h - Bounded queue of pending requests -----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pending-job buffer between admission control and the scheduler.
/// Jobs sit in arrival order; policies inspect the whole queue and remove
/// an arbitrary element (FCFS takes the front, SJF/priority pick by
/// estimate), so the container is a deque with indexed removal rather
/// than a plain FIFO. Capacity is fixed at construction - the admission
/// controller, not the queue, decides what happens to the overflow.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SERVE_JOBQUEUE_H
#define FFT3D_SERVE_JOBQUEUE_H

#include "serve/JobRequest.h"

#include <cstddef>
#include <deque>

namespace fft3d {

/// Bounded, arrival-ordered buffer of pending jobs.
class JobQueue {
public:
  /// \p Capacity > 0: the maximum number of queued (not yet dispatched)
  /// jobs.
  explicit JobQueue(std::size_t Capacity);

  std::size_t capacity() const { return Cap; }
  std::size_t size() const { return Pending.size(); }
  bool empty() const { return Pending.empty(); }
  bool full() const { return Pending.size() >= Cap; }

  /// Appends an admitted job. Aborts if the queue is full (the admission
  /// controller must have shed it instead).
  void push(const JobRequest &Job);

  /// The pending jobs, oldest first. Indices are stable until the next
  /// push/take.
  const JobRequest &at(std::size_t Index) const;

  /// Removes and returns the job at \p Index (0 = oldest).
  JobRequest take(std::size_t Index);

  /// Arrival time of the oldest pending job (0 when empty).
  Picos oldestArrival() const;

  /// Sum of per-frame elements over all pending jobs - a cheap backlog
  /// proxy for admission decisions.
  std::uint64_t pendingElements() const;

private:
  std::size_t Cap;
  std::deque<JobRequest> Pending;
};

} // namespace fft3d

#endif // FFT3D_SERVE_JOBQUEUE_H
