//===- serve/ServiceModel.cpp - Per-job service-time estimation -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/ServiceModel.h"

#include "cluster/ClusterFftProcessor.h"
#include "core/BatchProcessor.h"
#include "fft/Complex.h"
#include "support/ErrorHandling.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace fft3d;

Picos ServiceEstimate::totalTime(unsigned Frames) const {
  if (Frames <= 1)
    return 2 * PhaseTime;
  const Picos Steady = std::max(PhaseTime, OverlapTime);
  return 2 * PhaseTime + static_cast<Picos>(Frames - 1) * Steady;
}

ServiceModel::ServiceModel(const MemoryConfig &Mem,
                           std::uint64_t MaxSimBytes,
                           std::uint64_t MaxSimOps, unsigned SimThreads,
                           unsigned Stacks, double LinkGBps)
    : Mem(Mem), MaxSimBytes(MaxSimBytes), MaxSimOps(MaxSimOps),
      SimThreads(SimThreads), Stacks(Stacks), LinkGBps(LinkGBps) {}

const ServiceEstimate &ServiceModel::estimate(std::uint64_t N,
                                              unsigned Vaults) const {
  if (Vaults == 0 || Vaults > Mem.Geo.NumVaults)
    reportFatalError("vault share out of range");
  // The stack count shapes the measured pipeline (distributed runs add
  // the transpose exchange), so it is part of the key even though it is
  // fixed per model instance - two models sharing one device size must
  // not alias their estimates.
  const bool Distributed = Stacks > 1 && N % Stacks == 0;
  const auto Key = std::make_tuple(N, Vaults, Distributed ? Stacks : 1u);
  {
    std::lock_guard<std::mutex> L(CacheMutex);
    const auto It = Cache.find(Key);
    if (It != Cache.end())
      return It->second;
  }

  // A share is a vault-disjoint slice of the device, so the measurement
  // must run on a device of that size: Memory3D's aggregate bandwidth is
  // NumVaults x the per-vault beat rate, and a 4-vault share really does
  // pace a job at 20 GB/s, not 80. The address mapping needs a
  // power-of-two vault count, so odd shares measure conservatively on
  // the largest power of two that fits.
  unsigned DeviceVaults = 1;
  while (2 * DeviceVaults <= Vaults)
    DeviceVaults *= 2;

  SystemConfig Config = SystemConfig::forProblemSize(N);
  Config.Mem = Mem;
  Config.Mem.Geo.NumVaults = DeviceVaults;
  Config.Optimized.VaultsParallel = DeviceVaults;
  Config.MaxSimBytesPerDirection = MaxSimBytes;
  Config.MaxSimOpsPerDirection = MaxSimOps;
  Config.SimThreads = SimThreads;

  ServiceEstimate Est;
  if (Distributed) {
    // Distributed jobs run the slab-decomposed 2D FFT: per-stack row
    // phase, all-to-all transpose over the links, per-stack column
    // phase. Frames do not overlap across the exchange barrier, so the
    // steady-state stage is the same full pipeline.
    ClusterConfig CC;
    CC.Stacks = Stacks;
    CC.LinkGBps = LinkGBps;
    CC.Node = Config;
    const ClusterReport Rep = ClusterFftProcessor(CC).run2d();
    Est.PhaseTime = Rep.TotalTime / 2;
    Est.OverlapTime = Est.PhaseTime;
  } else {
    const BatchReport Report = BatchProcessor(Config).run(2);
    Est.PhaseTime = Report.PhaseTime;
    Est.OverlapTime = Report.OverlapTime;
  }
  if (DeviceVaults != Vaults) {
    // The phases are memory-paced at small shares, so the extra vaults
    // beyond the measured power of two speed the job up linearly. This
    // keeps the estimate monotone in the share - essential when vault
    // failures leave a degraded, non-power-of-two machine.
    const double Ratio =
        static_cast<double>(DeviceVaults) / static_cast<double>(Vaults);
    Est.PhaseTime = static_cast<Picos>(
        static_cast<double>(Est.PhaseTime) * Ratio + 0.5);
    Est.OverlapTime = static_cast<Picos>(
        static_cast<double>(Est.OverlapTime) * Ratio + 0.5);
  }
  Est.Plan = LayoutPlanner(Config.Mem.Geo, Mem.Time, ElementBytes)
                 .plan(N, DeviceVaults);
  // The measurement is deterministic, so if another thread raced us here
  // try_emplace keeps its (identical) result and ours is discarded.
  std::lock_guard<std::mutex> L(CacheMutex);
  return Cache.try_emplace(Key, Est).first->second;
}

void ServiceModel::prewarm(
    const std::vector<std::pair<std::uint64_t, unsigned>> &Keys,
    ThreadPool &Pool) const {
  Pool.parallelFor(Keys.size(), [&](std::size_t I) {
    estimate(Keys[I].first, Keys[I].second);
  });
}

Picos ServiceModel::serviceTime(const JobRequest &Job,
                                unsigned Vaults) const {
  const ServiceEstimate &Est = estimate(Job.N, Vaults);
  Picos Fp32Time;
  if (Job.Kind == JobKind::Conv2d) {
    // FFT-based convolution, priced in units of the measured complex
    // PhaseTime (the cost of moving 2M bytes, M = one matrix). One REAL
    // frame: forward half-spectrum FFT (two half-volume phases = 1
    // PhaseTime), the pointwise multiply (read two wedges, write one:
    // 1.5M bytes = 3/4 PhaseTime), inverse FFT (1 PhaseTime) - 11/4
    // PhaseTime total. A complex frame moves twice the bytes at every
    // stage. The pointwise stage is a barrier, so frames do not overlap
    // the way the plain batch pipeline does.
    const Picos RealFrame = 11 * Est.PhaseTime / 4;
    const Picos Frame =
        Job.Input == JobInput::Real ? RealFrame : 2 * RealFrame;
    Fp32Time = static_cast<Picos>(Job.Frames) * Frame;
  } else {
    Fp32Time = Est.totalTime(Job.Frames);
    // Real-input FFTs move the packed N x (N/2) wedge: half the bytes
    // per phase of these byte-paced stages, so half the time.
    if (Job.Input == JobInput::Real)
      Fp32Time /= 2;
  }
  // Half-precision packs two elements per 64-bit stream word; these
  // phases are byte-paced (kernel stream rate and vault bandwidth are
  // both in bytes), so the request finishes in half the time.
  return Job.Precision == JobPrecision::Fp16 ? Fp32Time / 2 : Fp32Time;
}
