//===- serve/AdmissionController.cpp - Load shedding at the door ----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/AdmissionController.h"

using namespace fft3d;

const char *fft3d::admissionDecisionName(AdmissionDecision D) {
  switch (D) {
  case AdmissionDecision::Admit:
    return "admit";
  case AdmissionDecision::ShedQueueFull:
    return "shed-queue-full";
  case AdmissionDecision::ShedInfeasible:
    return "shed-infeasible";
  case AdmissionDecision::ShedBrownout:
    return "shed-brownout";
  case AdmissionDecision::ShedFailed:
    return "shed-failed";
  }
  return "?";
}

AdmissionDecision AdmissionController::decide(const JobRequest &Job,
                                              const JobQueue &Queue,
                                              Picos Now, Picos Backlog,
                                              Picos EstService) {
  if (BrownoutActive && Job.Priority >= BrownoutPriorityFloor) {
    ++NumShedBrownout;
    return AdmissionDecision::ShedBrownout;
  }
  if (Queue.full()) {
    ++NumShedFull;
    return AdmissionDecision::ShedQueueFull;
  }
  if (ShedInfeasibleEnabled && Job.hasDeadline() &&
      Now + Backlog + EstService > Job.Deadline) {
    ++NumShedInfeasible;
    return AdmissionDecision::ShedInfeasible;
  }
  ++NumAdmitted;
  return AdmissionDecision::Admit;
}

void AdmissionController::setBrownout(bool Active, unsigned PriorityFloor) {
  BrownoutActive = Active;
  BrownoutPriorityFloor = PriorityFloor;
}

void AdmissionController::reset() {
  BrownoutActive = false;
  BrownoutPriorityFloor = 0;
  NumAdmitted = 0;
  NumShedFull = 0;
  NumShedInfeasible = 0;
  NumShedBrownout = 0;
}
