//===- obs/Metrics.h - Unified metrics registry -----------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hierarchical metrics registry unifying the quantities that used to
/// live in bespoke structs (MemStats, SloSummary, PhaseResult,
/// HealthMonitor): named counters, gauges and fixed-bucket histograms,
/// each optionally labeled (`mem.reads{vault=3}`). The owning structs
/// keep their APIs as thin views and *export* into a registry, so no
/// caller breaks while every tool gains one uniform snapshot format.
///
/// Concurrency contract:
///  - Registration (counter()/gauge()/histogram()) takes a mutex; do it
///    during setup or accept the lock on a cold path.
///  - Counter and gauge updates are lock-free relaxed atomics - safe
///    from any thread, and a plain add on the single-threaded hot path.
///  - Histograms are single-writer. Parallel sweep shards each own a
///    registry and the caller merges them (mergeFrom) afterwards; the
///    merge is deterministic, so sharded runs reproduce byte-identical
///    snapshots for any thread count.
///
/// Snapshots are ordered by full metric name, serialized to JSON, and
/// round-trip through parseJson - the regression harness diffs them.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_OBS_METRICS_H
#define FFT3D_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fft3d {

/// Label set attached to a metric, e.g. {{"vault","3"}}. Canonicalized
/// (sorted by key) so equal sets always produce the same metric.
class MetricLabels {
public:
  MetricLabels() = default;
  MetricLabels(
      std::initializer_list<std::pair<std::string, std::string>> Items);

  void add(std::string Key, std::string Value);
  bool empty() const { return Items.empty(); }

  /// Canonical suffix: "" when empty, else "{k1=v1,k2=v2}" with keys
  /// sorted.
  std::string suffix() const;

private:
  std::vector<std::pair<std::string, std::string>> Items;
};

/// Monotonically increasing counter. Lock-free.
class MetricCounter {
public:
  void add(std::uint64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return Value.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> Value{0};
};

/// Last-written value. Lock-free.
class MetricGauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// Fixed-width-bucket histogram with an overflow bucket, a sample count
/// and a running sum. Single-writer; merge shards with mergeFrom.
class MetricHistogram {
public:
  MetricHistogram(double BucketWidth, unsigned NumBuckets);

  void observe(double Value);

  /// Records \p Count samples of \p Value at once. Exporters that already
  /// hold pre-bucketed tallies (the sharded engine's per-window width
  /// counts) would otherwise loop observe() per window.
  void observeMany(double Value, std::uint64_t Count);

  double bucketWidth() const { return Width; }
  unsigned numBuckets() const {
    return static_cast<unsigned>(Buckets.size());
  }
  std::uint64_t bucketCount(unsigned I) const { return Buckets[I]; }
  std::uint64_t overflowCount() const { return Overflow; }
  std::uint64_t count() const { return Total; }
  double sum() const { return Sum; }
  double mean() const {
    return Total == 0 ? 0.0 : Sum / static_cast<double>(Total);
  }

  /// Nearest-rank percentile resolved to bucket granularity: the LOWER
  /// edge of the bucket holding the rank-ceil(F*n) sample. When every
  /// sample lands alone in a bucket (width finer than sample spacing)
  /// this equals SloTracker::percentile on the same samples exactly.
  /// \p Fraction in (0, 1]; returns 0 for an empty histogram. Overflow
  /// samples resolve to the histogram's upper range edge.
  double percentile(double Fraction) const;

  /// Adds \p Other's buckets into this histogram. The shapes (width and
  /// bucket count) must match.
  void mergeFrom(const MetricHistogram &Other);

private:
  double Width;
  std::vector<std::uint64_t> Buckets;
  std::uint64_t Overflow = 0;
  std::uint64_t Total = 0;
  double Sum = 0.0;
};

/// One metric in a snapshot, identified by its full name
/// ("mem.reads{vault=3}").
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };

  std::string Name;
  Kind Type = Kind::Counter;
  /// Counter: integer value. Gauge/Histogram: unused (0).
  std::uint64_t IntValue = 0;
  /// Gauge: the value. Histogram: the running sum.
  double Value = 0.0;
  /// Histogram-only fields.
  double BucketWidth = 0.0;
  std::uint64_t Overflow = 0;
  std::vector<std::uint64_t> Buckets;

  bool operator==(const MetricSample &Other) const;
};

/// Point-in-time copy of a registry, ordered by metric name.
struct MetricsSnapshot {
  std::vector<MetricSample> Samples;

  bool operator==(const MetricsSnapshot &Other) const {
    return Samples == Other.Samples;
  }

  /// Serializes as a JSON object {"metrics":[...]}. Doubles print with
  /// 17 significant digits so parseJson round-trips bit-exactly.
  void writeJson(std::ostream &OS) const;

  /// Parses writeJson output. Returns false (and sets \p Error) on
  /// malformed input.
  static bool parseJson(std::istream &In, MetricsSnapshot &Out,
                        std::string *Error = nullptr);
};

/// The registry. Metrics are created on first use and live as long as
/// the registry; returned references stay valid across later
/// registrations.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Finds or creates the counter \p Name with \p Labels.
  MetricCounter &counter(const std::string &Name,
                         const MetricLabels &Labels = {});
  MetricGauge &gauge(const std::string &Name,
                     const MetricLabels &Labels = {});
  /// Finds or creates a histogram; an existing histogram's shape must
  /// match \p BucketWidth / \p NumBuckets.
  MetricHistogram &histogram(const std::string &Name, double BucketWidth,
                             unsigned NumBuckets,
                             const MetricLabels &Labels = {});

  /// Lookup without creation; null when absent.
  const MetricCounter *findCounter(const std::string &Name,
                                   const MetricLabels &Labels = {}) const;
  const MetricGauge *findGauge(const std::string &Name,
                               const MetricLabels &Labels = {}) const;
  const MetricHistogram *
  findHistogram(const std::string &Name,
                const MetricLabels &Labels = {}) const;

  /// Number of registered metrics across all kinds.
  std::size_t size() const;

  /// Merges \p Other into this registry (sweep-shard reduction):
  /// counters and histograms add; gauges take the maximum (shards have
  /// no meaningful "last" writer).
  void mergeFrom(const MetricsRegistry &Other);

  MetricsSnapshot snapshot() const;

  /// snapshot().writeJson(OS).
  void writeJson(std::ostream &OS) const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<MetricCounter>> Counters;
  std::map<std::string, std::unique_ptr<MetricGauge>> Gauges;
  std::map<std::string, std::unique_ptr<MetricHistogram>> Histograms;
};

} // namespace fft3d

#endif // FFT3D_OBS_METRICS_H
