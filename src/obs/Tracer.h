//===- obs/Tracer.h - Timeline event tracing --------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timeline tracing for the simulator: span and instant events (phase
/// begin/end, per-vault request issue and completion, row activations,
/// TSV bus occupancy, serving-layer job lifecycle, fault injections)
/// collected into a bounded in-memory buffer and exported as Chrome
/// `trace_event` JSON, loadable by chrome://tracing and Perfetto.
///
/// Design constraints, in order:
///
///  - Zero overhead when absent. Every producer holds a `Tracer *` that
///    is null by default; the instrumented hot paths reduce to one
///    null-pointer test, so untraced simulations are bit-identical (and
///    measurably no slower) than before tracing existed.
///  - Bounded memory. Events land in a pre-reserved buffer of fixed
///    capacity; once full, new events are counted in dropped() and
///    discarded. Retained events are never reordered or evicted, so the
///    prefix of a capped 8192^2 trace is exactly the prefix of the
///    uncapped one.
///  - Deterministic. Event names are static strings, arguments are
///    integers, timestamps are the simulator's integer picoseconds; the
///    recorded stream is a pure function of the simulated run, which the
///    golden-trace regression harness (obs/TraceDigest.h) pins.
///
/// The tracer is intentionally not thread-safe: it attaches to a single
/// simulation, which is single-threaded by construction. Parallel sweeps
/// give each cell its own tracer (or none).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_OBS_TRACER_H
#define FFT3D_OBS_TRACER_H

#include "support/Units.h"

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace fft3d {

/// Event categories, usable as a bitmask filter (`--trace-cats`).
enum TraceCategory : std::uint32_t {
  /// Memory-system events: request spans, row activations, TSV bus
  /// occupancy, refresh stalls.
  TraceCatMem = 1u << 0,
  /// FFT phase spans (row phase, migration, column phase).
  TraceCatPhase = 1u << 1,
  /// Serving-layer job lifecycle: arrive, dispatch span, shed, brownout.
  TraceCatServe = 1u << 2,
  /// Fault injection: ECC retries, throttle stalls, offline redirects
  /// and failures, transient job failures.
  TraceCatFault = 1u << 3,
  /// Inter-stack transfers: cluster interconnect message spans and
  /// per-link queueing.
  TraceCatXfer = 1u << 4,
  /// Fleet front-end lifecycle: route decisions, queue drains,
  /// autoscaler actions, quota sheds, plan-cache misses.
  TraceCatFleet = 1u << 5,
};

constexpr std::uint32_t TraceCatAll =
    TraceCatMem | TraceCatPhase | TraceCatServe | TraceCatFault |
    TraceCatXfer | TraceCatFleet;

/// Short lowercase name of one category ("mem", "phase", ...).
const char *traceCategoryName(TraceCategory Cat);

/// Parses a comma-separated category list ("mem,phase") into a mask.
/// "all" selects every category. Returns false (and sets \p Error) on an
/// unknown token; an empty string is an error.
bool parseTraceCategories(const std::string &Text, std::uint32_t &Mask,
                          std::string *Error = nullptr);

/// One recorded event. Names and argument keys must be static strings
/// (string literals); arguments are integer-valued to keep recording
/// allocation-free and the exported trace deterministic.
struct TraceEvent {
  Picos Ts = 0;
  /// Duration for spans; 0 for instants.
  Picos Dur = 0;
  const char *Name = nullptr;
  TraceCategory Cat = TraceCatMem;
  /// Chrome phase: 'X' = complete span, 'i' = instant.
  char Ph = 'i';
  /// Track coordinates: pid groups tracks (0 = device, 1.. = serving
  /// runs), tid is the track within the group (vault index, phase lane).
  std::uint32_t Pid = 0;
  std::uint32_t Tid = 0;
  /// Up to two named integer arguments; a null key means "absent".
  const char *Arg0Key = nullptr;
  std::uint64_t Arg0 = 0;
  const char *Arg1Key = nullptr;
  std::uint64_t Arg1 = 0;
};

/// Bounded collector of TraceEvents.
class Tracer {
public:
  /// Default capacity: 1M events (~80 MB) bounds even an 8192^2 run.
  static constexpr std::size_t DefaultCapacity = 1u << 20;

  explicit Tracer(std::uint32_t Categories = TraceCatAll,
                  std::size_t Capacity = DefaultCapacity);

  /// True when events of \p Cat are collected. Producers test this
  /// before marshalling arguments.
  bool wants(TraceCategory Cat) const { return (Mask & Cat) != 0; }

  std::uint32_t categories() const { return Mask; }
  std::size_t capacity() const { return Cap; }

  /// Records a complete span [Ts, Ts + Dur).
  void span(TraceCategory Cat, const char *Name, std::uint32_t Pid,
            std::uint32_t Tid, Picos Ts, Picos Dur,
            const char *Arg0Key = nullptr, std::uint64_t Arg0 = 0,
            const char *Arg1Key = nullptr, std::uint64_t Arg1 = 0);

  /// Records an instantaneous event at \p Ts.
  void instant(TraceCategory Cat, const char *Name, std::uint32_t Pid,
               std::uint32_t Tid, Picos Ts,
               const char *Arg0Key = nullptr, std::uint64_t Arg0 = 0,
               const char *Arg1Key = nullptr, std::uint64_t Arg1 = 0);

  /// Recorded events, in recording order (the simulator's deterministic
  /// execution order).
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Events discarded because the buffer was full.
  std::uint64_t dropped() const { return Dropped; }

  /// Names a pid / (pid, tid) track in the exported trace ("vault 3",
  /// "fcfs"). Cosmetic; not part of the golden digest.
  void setProcessName(std::uint32_t Pid, std::string Name);
  void setThreadName(std::uint32_t Pid, std::uint32_t Tid, std::string Name);

  /// Drops all recorded events and the drop counter (names are kept).
  void clear();

  /// Appends \p Src's events (in their recorded order) to this tracer,
  /// honouring this tracer's capacity, then clears \p Src. The sharded
  /// engine records each vault into a private shadow tracer and absorbs
  /// the shadows in vault order at every window boundary, so the merged
  /// stream is single-writer and thread-count independent.
  void absorb(Tracer &Src);

  /// Writes the Chrome trace_event JSON object: events sorted by
  /// timestamp (ties keep recording order), `displayTimeUnit` set, track
  /// name metadata included, and a `fft3d_dropped_events` counter when
  /// the buffer overflowed. Timestamps are microseconds with picosecond
  /// resolution (six fraction digits).
  void writeChromeTrace(std::ostream &OS) const;

private:
  void record(const TraceEvent &E);

  std::uint32_t Mask;
  std::size_t Cap;
  std::vector<TraceEvent> Events;
  std::uint64_t Dropped = 0;
  std::map<std::uint32_t, std::string> ProcessNames;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> ThreadNames;
};

} // namespace fft3d

#endif // FFT3D_OBS_TRACER_H
