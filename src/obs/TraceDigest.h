//===- obs/TraceDigest.h - Golden-trace regression digest -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical, compact text form of a recorded trace (and optionally a
/// metrics snapshot) for golden-file regression testing: one line per
/// event in recording order - which is the simulator's deterministic
/// execution order - with integer picosecond timestamps and integer
/// arguments, followed by the name-ordered metric values.
///
/// A digest of a small run checked into tests/golden/ pins three things
/// at once: event ordering (controller decisions, scheduler order),
/// event timing (every derived timestamp of the memory model), and
/// counter values. Any event-core or controller change that perturbs one
/// of them diffs loudly instead of silently shifting results.
///
/// Update workflow (see docs/Observability.md): run the golden test with
/// FFT3D_UPDATE_GOLDEN=1 to rewrite the file, then review the diff like
/// any other code change.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_OBS_TRACEDIGEST_H
#define FFT3D_OBS_TRACEDIGEST_H

#include "obs/Metrics.h"
#include "obs/Tracer.h"

#include <string>

namespace fft3d {

/// Renders the digest text. Includes every recorded event, the drop
/// counter, and (when \p Metrics is non-null) every metric sample.
std::string traceDigest(const Tracer &Trace,
                        const MetricsSnapshot *Metrics = nullptr);

} // namespace fft3d

#endif // FFT3D_OBS_TRACEDIGEST_H
