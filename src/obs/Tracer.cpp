//===- obs/Tracer.cpp - Timeline event tracing ----------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "obs/Tracer.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cstdio>

using namespace fft3d;

const char *fft3d::traceCategoryName(TraceCategory Cat) {
  switch (Cat) {
  case TraceCatMem:
    return "mem";
  case TraceCatPhase:
    return "phase";
  case TraceCatServe:
    return "serve";
  case TraceCatFault:
    return "fault";
  case TraceCatXfer:
    return "xfer";
  case TraceCatFleet:
    return "fleet";
  }
  fft3d_unreachable("unknown TraceCategory");
}

bool fft3d::parseTraceCategories(const std::string &Text,
                                 std::uint32_t &Mask, std::string *Error) {
  Mask = 0;
  std::size_t Pos = 0;
  bool Any = false;
  while (Pos <= Text.size()) {
    const std::size_t Comma = std::min(Text.find(',', Pos), Text.size());
    const std::string Token = Text.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Token.empty()) {
      if (Comma == Text.size())
        break;
      continue;
    }
    Any = true;
    if (Token == "all")
      Mask |= TraceCatAll;
    else if (Token == "mem")
      Mask |= TraceCatMem;
    else if (Token == "phase")
      Mask |= TraceCatPhase;
    else if (Token == "serve")
      Mask |= TraceCatServe;
    else if (Token == "fault")
      Mask |= TraceCatFault;
    else if (Token == "xfer")
      Mask |= TraceCatXfer;
    else if (Token == "fleet")
      Mask |= TraceCatFleet;
    else {
      if (Error)
        *Error = "unknown trace category '" + Token +
                 "' (expected mem, phase, serve, fault, xfer, fleet, all)";
      return false;
    }
    if (Comma == Text.size())
      break;
  }
  if (!Any) {
    if (Error)
      *Error = "empty trace category list";
    return false;
  }
  return true;
}

Tracer::Tracer(std::uint32_t Categories, std::size_t Capacity)
    : Mask(Categories), Cap(Capacity) {
  // Reserve up front so recording never reallocates mid-run; cap the
  // eager reservation so tiny test tracers stay tiny.
  Events.reserve(std::min<std::size_t>(Cap, 1u << 16));
}

void Tracer::record(const TraceEvent &E) {
  if (Events.size() >= Cap) {
    ++Dropped;
    return;
  }
  Events.push_back(E);
}

void Tracer::span(TraceCategory Cat, const char *Name, std::uint32_t Pid,
                  std::uint32_t Tid, Picos Ts, Picos Dur,
                  const char *Arg0Key, std::uint64_t Arg0,
                  const char *Arg1Key, std::uint64_t Arg1) {
  if (!wants(Cat))
    return;
  record({Ts, Dur, Name, Cat, 'X', Pid, Tid, Arg0Key, Arg0, Arg1Key, Arg1});
}

void Tracer::instant(TraceCategory Cat, const char *Name, std::uint32_t Pid,
                     std::uint32_t Tid, Picos Ts,
                     const char *Arg0Key, std::uint64_t Arg0,
                     const char *Arg1Key, std::uint64_t Arg1) {
  if (!wants(Cat))
    return;
  record({Ts, 0, Name, Cat, 'i', Pid, Tid, Arg0Key, Arg0, Arg1Key, Arg1});
}

void Tracer::setProcessName(std::uint32_t Pid, std::string Name) {
  ProcessNames[Pid] = std::move(Name);
}

void Tracer::setThreadName(std::uint32_t Pid, std::uint32_t Tid,
                           std::string Name) {
  ThreadNames[{Pid, Tid}] = std::move(Name);
}

void Tracer::clear() {
  Events.clear();
  Dropped = 0;
}

void Tracer::absorb(Tracer &Src) {
  for (const TraceEvent &E : Src.Events)
    record(E);
  // Events the shadow itself had to drop are drops of the merged stream
  // too; the combined counter stays exact.
  Dropped += Src.Dropped;
  Src.clear();
}

namespace {

/// Microseconds with picosecond resolution: Chrome's `ts`/`dur` unit.
void writeMicros(std::ostream &OS, Picos Ps) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%llu.%06llu",
                static_cast<unsigned long long>(Ps / PicosPerMicro),
                static_cast<unsigned long long>(Ps % PicosPerMicro));
  OS << Buf;
}

void writeJsonString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (const char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (static_cast<unsigned char>(C) < 0x20)
      OS << ' ';
    else
      OS << C;
  }
  OS << '"';
}

} // namespace

void Tracer::writeChromeTrace(std::ostream &OS) const {
  // Sort by timestamp for viewers; ties keep recording order so equal-time
  // events stay in the simulator's deterministic execution order.
  std::vector<std::uint32_t> Order(Events.size());
  for (std::uint32_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [this](std::uint32_t A, std::uint32_t B) {
                     return Events[A].Ts < Events[B].Ts;
                   });

  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  const auto Sep = [&] {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n";
  };

  for (const auto &[Pid, Name] : ProcessNames) {
    Sep();
    OS << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << Pid
       << ",\"tid\":0,\"args\":{\"name\":";
    writeJsonString(OS, Name);
    OS << "}}";
  }
  for (const auto &[Key, Name] : ThreadNames) {
    Sep();
    OS << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << Key.first
       << ",\"tid\":" << Key.second << ",\"args\":{\"name\":";
    writeJsonString(OS, Name);
    OS << "}}";
  }

  for (const std::uint32_t I : Order) {
    const TraceEvent &E = Events[I];
    Sep();
    OS << "{\"name\":\"" << E.Name << "\",\"cat\":\""
       << traceCategoryName(E.Cat) << "\",\"ph\":\"" << E.Ph
       << "\",\"pid\":" << E.Pid << ",\"tid\":" << E.Tid << ",\"ts\":";
    writeMicros(OS, E.Ts);
    if (E.Ph == 'X') {
      OS << ",\"dur\":";
      writeMicros(OS, E.Dur);
    } else {
      // Thread-scoped instants keep Perfetto from stretching them across
      // the whole process track.
      OS << ",\"s\":\"t\"";
    }
    if (E.Arg0Key || E.Arg1Key) {
      OS << ",\"args\":{";
      if (E.Arg0Key)
        OS << "\"" << E.Arg0Key << "\":" << E.Arg0;
      if (E.Arg1Key)
        OS << (E.Arg0Key ? "," : "") << "\"" << E.Arg1Key
           << "\":" << E.Arg1;
      OS << "}";
    }
    OS << "}";
  }

  if (Dropped != 0) {
    // Surface the overflow inside the trace itself so a truncated
    // timeline is never mistaken for a complete one.
    const Picos LastTs = Events.empty() ? 0 : Events.back().Ts;
    Sep();
    OS << "{\"name\":\"fft3d_dropped_events\",\"cat\":\"mem\",\"ph\":\"C\","
          "\"pid\":0,\"tid\":0,\"ts\":";
    writeMicros(OS, LastTs);
    OS << ",\"args\":{\"dropped\":" << Dropped << "}}";
  }
  OS << "\n]}\n";
}
