//===- obs/TraceDigest.cpp - Golden-trace regression digest ---------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceDigest.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace fft3d;

namespace {

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

} // namespace

std::string fft3d::traceDigest(const Tracer &Trace,
                               const MetricsSnapshot *Metrics) {
  std::string Out;
  Out += "# fft3d trace digest v1\n";
  appendf(Out, "events %zu dropped %" PRIu64 "\n", Trace.events().size(),
          Trace.dropped());
  for (const TraceEvent &E : Trace.events()) {
    appendf(Out, "%s %c %" PRIu32 ":%" PRIu32 " ts=%" PRIu64,
            traceCategoryName(E.Cat), E.Ph, E.Pid, E.Tid, E.Ts);
    if (E.Ph == 'X')
      appendf(Out, " dur=%" PRIu64, E.Dur);
    Out += " ";
    Out += E.Name;
    if (E.Arg0Key)
      appendf(Out, " %s=%" PRIu64, E.Arg0Key, E.Arg0);
    if (E.Arg1Key)
      appendf(Out, " %s=%" PRIu64, E.Arg1Key, E.Arg1);
    Out += "\n";
  }
  if (Metrics) {
    appendf(Out, "metrics %zu\n", Metrics->Samples.size());
    for (const MetricSample &S : Metrics->Samples) {
      switch (S.Type) {
      case MetricSample::Kind::Counter:
        appendf(Out, "counter %s %" PRIu64 "\n", S.Name.c_str(),
                S.IntValue);
        break;
      case MetricSample::Kind::Gauge:
        appendf(Out, "gauge %s %.17g\n", S.Name.c_str(), S.Value);
        break;
      case MetricSample::Kind::Histogram: {
        appendf(Out, "histogram %s count=%" PRIu64 " sum=%.17g overflow=%"
                PRIu64 " buckets=",
                S.Name.c_str(), S.IntValue, S.Value, S.Overflow);
        // Sparse form: index:count pairs, so wide histograms stay short.
        bool First = true;
        for (std::size_t I = 0; I != S.Buckets.size(); ++I) {
          if (S.Buckets[I] == 0)
            continue;
          appendf(Out, "%s%zu:%" PRIu64, First ? "" : ",", I,
                  S.Buckets[I]);
          First = false;
        }
        if (First)
          Out += "-";
        Out += "\n";
        break;
      }
      }
    }
  }
  return Out;
}
