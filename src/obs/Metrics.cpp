//===- obs/Metrics.cpp - Unified metrics registry -------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace fft3d;

MetricLabels::MetricLabels(
    std::initializer_list<std::pair<std::string, std::string>> Init) {
  for (const auto &[K, V] : Init)
    add(K, V);
}

void MetricLabels::add(std::string Key, std::string Value) {
  Items.emplace_back(std::move(Key), std::move(Value));
}

std::string MetricLabels::suffix() const {
  if (Items.empty())
    return "";
  std::vector<std::pair<std::string, std::string>> Sorted = Items;
  std::sort(Sorted.begin(), Sorted.end());
  std::string Out = "{";
  for (std::size_t I = 0; I != Sorted.size(); ++I) {
    if (I != 0)
      Out += ",";
    Out += Sorted[I].first + "=" + Sorted[I].second;
  }
  Out += "}";
  return Out;
}

MetricHistogram::MetricHistogram(double BucketWidth, unsigned NumBuckets)
    : Width(BucketWidth), Buckets(NumBuckets, 0) {
  if (BucketWidth <= 0.0 || NumBuckets == 0)
    reportFatalError("degenerate metric histogram shape");
}

void MetricHistogram::observe(double Value) {
  ++Total;
  Sum += Value;
  if (Value < 0.0) {
    assert(false && "negative histogram sample");
    ++Buckets.front();
    return;
  }
  const auto Bucket = static_cast<std::uint64_t>(Value / Width);
  if (Bucket >= Buckets.size())
    ++Overflow;
  else
    ++Buckets[static_cast<std::size_t>(Bucket)];
}

void MetricHistogram::observeMany(double Value, std::uint64_t Count) {
  if (Count == 0)
    return;
  Total += Count;
  Sum += Value * static_cast<double>(Count);
  if (Value < 0.0) {
    assert(false && "negative histogram sample");
    Buckets.front() += Count;
    return;
  }
  const auto Bucket = static_cast<std::uint64_t>(Value / Width);
  if (Bucket >= Buckets.size())
    Overflow += Count;
  else
    Buckets[static_cast<std::size_t>(Bucket)] += Count;
}

double MetricHistogram::percentile(double Fraction) const {
  if (Total == 0)
    return 0.0;
  if (Fraction <= 0.0 || Fraction > 1.0)
    reportFatalError("percentile fraction must be in (0, 1]");
  // Nearest rank: the ceil(F * n)-th smallest sample, 1-based - the same
  // definition SloTracker::percentile applies to its exact sample set.
  const auto Rank = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(Fraction * static_cast<double>(Total))),
      1);
  std::uint64_t Seen = 0;
  for (std::size_t I = 0; I != Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank)
      return static_cast<double>(I) * Width;
  }
  return static_cast<double>(Buckets.size()) * Width;
}

void MetricHistogram::mergeFrom(const MetricHistogram &Other) {
  if (Other.Width != Width || Other.Buckets.size() != Buckets.size())
    reportFatalError("merging metric histograms of different shapes");
  for (std::size_t I = 0; I != Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Overflow += Other.Overflow;
  Total += Other.Total;
  Sum += Other.Sum;
}

bool MetricSample::operator==(const MetricSample &Other) const {
  return Name == Other.Name && Type == Other.Type &&
         IntValue == Other.IntValue && Value == Other.Value &&
         BucketWidth == Other.BucketWidth && Overflow == Other.Overflow &&
         Buckets == Other.Buckets;
}

namespace {

std::string fullName(const std::string &Name, const MetricLabels &Labels) {
  return Name + Labels.suffix();
}

/// 17 significant digits: enough for strtod to reproduce the exact bits.
void writeDouble(std::ostream &OS, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  OS << Buf;
}

} // namespace

MetricCounter &MetricsRegistry::counter(const std::string &Name,
                                        const MetricLabels &Labels) {
  const std::string Key = fullName(Name, Labels);
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<MetricCounter> &Slot = Counters[Key];
  if (!Slot)
    Slot = std::make_unique<MetricCounter>();
  return *Slot;
}

MetricGauge &MetricsRegistry::gauge(const std::string &Name,
                                    const MetricLabels &Labels) {
  const std::string Key = fullName(Name, Labels);
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<MetricGauge> &Slot = Gauges[Key];
  if (!Slot)
    Slot = std::make_unique<MetricGauge>();
  return *Slot;
}

MetricHistogram &MetricsRegistry::histogram(const std::string &Name,
                                            double BucketWidth,
                                            unsigned NumBuckets,
                                            const MetricLabels &Labels) {
  const std::string Key = fullName(Name, Labels);
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<MetricHistogram> &Slot = Histograms[Key];
  if (!Slot)
    Slot = std::make_unique<MetricHistogram>(BucketWidth, NumBuckets);
  else if (Slot->bucketWidth() != BucketWidth ||
           Slot->numBuckets() != NumBuckets)
    reportFatalError(
        ("histogram '" + Key + "' re-registered with a different shape")
            .c_str());
  return *Slot;
}

const MetricCounter *
MetricsRegistry::findCounter(const std::string &Name,
                             const MetricLabels &Labels) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Counters.find(fullName(Name, Labels));
  return It == Counters.end() ? nullptr : It->second.get();
}

const MetricGauge *
MetricsRegistry::findGauge(const std::string &Name,
                           const MetricLabels &Labels) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Gauges.find(fullName(Name, Labels));
  return It == Gauges.end() ? nullptr : It->second.get();
}

const MetricHistogram *
MetricsRegistry::findHistogram(const std::string &Name,
                               const MetricLabels &Labels) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Histograms.find(fullName(Name, Labels));
  return It == Histograms.end() ? nullptr : It->second.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.size() + Gauges.size() + Histograms.size();
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &Other) {
  // Lock ordering: callers merge shards from one thread after the sweep
  // joins, so taking both mutexes here (this first) cannot deadlock.
  std::lock_guard<std::mutex> LockThis(Mutex);
  std::lock_guard<std::mutex> LockOther(Other.Mutex);
  for (const auto &[Key, C] : Other.Counters) {
    std::unique_ptr<MetricCounter> &Slot = Counters[Key];
    if (!Slot)
      Slot = std::make_unique<MetricCounter>();
    Slot->add(C->value());
  }
  for (const auto &[Key, G] : Other.Gauges) {
    std::unique_ptr<MetricGauge> &Slot = Gauges[Key];
    if (!Slot)
      Slot = std::make_unique<MetricGauge>();
    Slot->set(std::max(Slot->value(), G->value()));
  }
  for (const auto &[Key, H] : Other.Histograms) {
    std::unique_ptr<MetricHistogram> &Slot = Histograms[Key];
    if (!Slot)
      Slot = std::make_unique<MetricHistogram>(H->bucketWidth(),
                                               H->numBuckets());
    Slot->mergeFrom(*H);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot Snap;
  // std::map iteration is name-ordered; interleave the three kinds into
  // one globally name-ordered list.
  for (const auto &[Key, C] : Counters) {
    MetricSample S;
    S.Name = Key;
    S.Type = MetricSample::Kind::Counter;
    S.IntValue = C->value();
    Snap.Samples.push_back(std::move(S));
  }
  for (const auto &[Key, G] : Gauges) {
    MetricSample S;
    S.Name = Key;
    S.Type = MetricSample::Kind::Gauge;
    S.Value = G->value();
    Snap.Samples.push_back(std::move(S));
  }
  for (const auto &[Key, H] : Histograms) {
    MetricSample S;
    S.Name = Key;
    S.Type = MetricSample::Kind::Histogram;
    S.IntValue = H->count();
    S.Value = H->sum();
    S.BucketWidth = H->bucketWidth();
    S.Overflow = H->overflowCount();
    S.Buckets.reserve(H->numBuckets());
    for (unsigned I = 0; I != H->numBuckets(); ++I)
      S.Buckets.push_back(H->bucketCount(I));
    Snap.Samples.push_back(std::move(S));
  }
  std::sort(Snap.Samples.begin(), Snap.Samples.end(),
            [](const MetricSample &A, const MetricSample &B) {
              return A.Name < B.Name;
            });
  return Snap;
}

void MetricsRegistry::writeJson(std::ostream &OS) const {
  snapshot().writeJson(OS);
}

void MetricsSnapshot::writeJson(std::ostream &OS) const {
  OS << "{\"metrics\":[";
  for (std::size_t I = 0; I != Samples.size(); ++I) {
    const MetricSample &S = Samples[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "{\"name\":\"" << S.Name << "\",";
    switch (S.Type) {
    case MetricSample::Kind::Counter:
      OS << "\"type\":\"counter\",\"value\":" << S.IntValue;
      break;
    case MetricSample::Kind::Gauge:
      OS << "\"type\":\"gauge\",\"value\":";
      writeDouble(OS, S.Value);
      break;
    case MetricSample::Kind::Histogram:
      OS << "\"type\":\"histogram\",\"count\":" << S.IntValue
         << ",\"sum\":";
      writeDouble(OS, S.Value);
      OS << ",\"width\":";
      writeDouble(OS, S.BucketWidth);
      OS << ",\"overflow\":" << S.Overflow << ",\"buckets\":[";
      for (std::size_t B = 0; B != S.Buckets.size(); ++B)
        OS << (B == 0 ? "" : ",") << S.Buckets[B];
      OS << "]";
      break;
    }
    OS << "}";
  }
  OS << "\n]}\n";
}

namespace {

/// Minimal recursive-descent reader for the exact JSON writeJson emits
/// (plus insignificant whitespace).
class JsonReader {
public:
  explicit JsonReader(std::istream &In) : In(In) {}

  bool fail(std::string *Error, const std::string &Why) {
    if (Error)
      *Error = "metrics JSON: " + Why;
    return false;
  }

  void skipWs() {
    while (true) {
      const int C = In.peek();
      if (C == ' ' || C == '\n' || C == '\t' || C == '\r')
        In.get();
      else
        return;
    }
  }

  bool expect(char C) {
    skipWs();
    return In.get() == C;
  }

  bool readString(std::string &Out) {
    skipWs();
    if (In.get() != '"')
      return false;
    Out.clear();
    while (true) {
      const int C = In.get();
      if (C == EOF)
        return false;
      if (C == '"')
        return true;
      if (C == '\\') {
        const int Next = In.get();
        if (Next == EOF)
          return false;
        Out.push_back(static_cast<char>(Next));
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }

  bool readNumberToken(std::string &Tok) {
    skipWs();
    Tok.clear();
    while (true) {
      const int C = In.peek();
      if (C == '-' || C == '+' || C == '.' || C == 'e' || C == 'E' ||
          (C >= '0' && C <= '9')) {
        Tok.push_back(static_cast<char>(In.get()));
      } else {
        break;
      }
    }
    return !Tok.empty();
  }

  bool readU64(std::uint64_t &Out) {
    std::string Tok;
    if (!readNumberToken(Tok))
      return false;
    Out = std::strtoull(Tok.c_str(), nullptr, 10);
    return true;
  }

  bool readDouble(double &Out) {
    std::string Tok;
    if (!readNumberToken(Tok))
      return false;
    Out = std::strtod(Tok.c_str(), nullptr);
    return true;
  }

  std::istream &In;
};

} // namespace

bool MetricsSnapshot::parseJson(std::istream &In, MetricsSnapshot &Out,
                                std::string *Error) {
  Out.Samples.clear();
  JsonReader R(In);
  std::string Key;
  if (!R.expect('{') || !R.readString(Key) || Key != "metrics" ||
      !R.expect(':') || !R.expect('['))
    return R.fail(Error, "expected {\"metrics\":[");
  R.skipWs();
  if (In.peek() == ']') {
    In.get();
    return R.expect('}');
  }
  while (true) {
    MetricSample S;
    std::string Type;
    if (!R.expect('{'))
      return R.fail(Error, "expected sample object");
    while (true) {
      if (!R.readString(Key) || !R.expect(':'))
        return R.fail(Error, "expected \"key\":");
      if (Key == "name") {
        if (!R.readString(S.Name))
          return R.fail(Error, "bad name");
      } else if (Key == "type") {
        if (!R.readString(Type))
          return R.fail(Error, "bad type");
      } else if (Key == "value") {
        if (Type == "counter") {
          if (!R.readU64(S.IntValue))
            return R.fail(Error, "bad counter value");
        } else {
          if (!R.readDouble(S.Value))
            return R.fail(Error, "bad gauge value");
        }
      } else if (Key == "count") {
        if (!R.readU64(S.IntValue))
          return R.fail(Error, "bad count");
      } else if (Key == "sum") {
        if (!R.readDouble(S.Value))
          return R.fail(Error, "bad sum");
      } else if (Key == "width") {
        if (!R.readDouble(S.BucketWidth))
          return R.fail(Error, "bad width");
      } else if (Key == "overflow") {
        if (!R.readU64(S.Overflow))
          return R.fail(Error, "bad overflow");
      } else if (Key == "buckets") {
        if (!R.expect('['))
          return R.fail(Error, "bad buckets");
        R.skipWs();
        if (In.peek() != ']') {
          while (true) {
            std::uint64_t B = 0;
            if (!R.readU64(B))
              return R.fail(Error, "bad bucket count");
            S.Buckets.push_back(B);
            R.skipWs();
            const int C = In.get();
            if (C == ']')
              break;
            if (C != ',')
              return R.fail(Error, "bad buckets separator");
          }
        } else {
          In.get();
        }
      } else {
        return R.fail(Error, "unknown key '" + Key + "'");
      }
      R.skipWs();
      const int C = In.get();
      if (C == '}')
        break;
      if (C != ',')
        return R.fail(Error, "bad sample separator");
    }
    if (Type == "counter")
      S.Type = MetricSample::Kind::Counter;
    else if (Type == "gauge")
      S.Type = MetricSample::Kind::Gauge;
    else if (Type == "histogram")
      S.Type = MetricSample::Kind::Histogram;
    else
      return R.fail(Error, "unknown type '" + Type + "'");
    Out.Samples.push_back(std::move(S));
    R.skipWs();
    const int C = In.get();
    if (C == ']')
      break;
    if (C != ',')
      return R.fail(Error, "bad array separator");
  }
  return R.expect('}');
}
