//===- core/PhaseEngine.h - Drives one FFT phase through memory -*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes one phase of the 2D FFT against the 3D-memory simulator: a
/// read stream feeding the kernel and a write stream draining it, each
/// paced at the kernel's stream rate and limited to a configurable number
/// of outstanding requests (the baseline is a blocking design with window
/// 1; the optimized front end pipelines deeply). The engine measures the
/// achieved bandwidth, row-buffer behaviour and time-to-first-data, and
/// extrapolates the full-phase duration when the simulation budget caps
/// the simulated volume.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CORE_PHASEENGINE_H
#define FFT3D_CORE_PHASEENGINE_H

#include "core/AccessTrace.h"
#include "mem3d/Memory3D.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "sim/EventQueue.h"

#include <cstdint>

namespace fft3d {

class ShardedEventQueue;

/// Parameters of one direction (read or write) of a phase.
struct StreamParams {
  /// Burst stream; nullptr means this direction has no traffic.
  TraceSource *Trace = nullptr;
  bool IsWrite = false;
  /// Maximum outstanding requests.
  unsigned Window = 1;
  /// Kernel pacing in GB/s for this direction; 0 = unpaced (memory-bound).
  double PaceGBps = 0.0;
  /// Delay before the first op may issue (e.g. kernel pipeline fill for
  /// the write stream).
  Picos StartLag = 0;
};

/// Measured outcome of one phase.
struct PhaseResult {
  Picos Elapsed = 0;
  std::uint64_t BytesRead = 0;
  std::uint64_t BytesWritten = 0;
  std::uint64_t Ops = 0;
  /// Per-direction steady-state rates (bytes over the direction's own
  /// active window). With asymmetric op sizes the two directions may
  /// exhaust their simulation budgets at different times, so each is
  /// measured over its own first-issue-to-last-completion span.
  double ReadGBps = 0.0;
  double WriteGBps = 0.0;
  /// Combined achieved bandwidth: sum of the concurrent stream rates.
  double ThroughputGBps = 0.0;
  /// ThroughputGBps / device peak.
  double PeakUtilization = 0.0;
  std::uint64_t RowActivations = 0;
  double RowHitRate = 0.0;
  /// Completion time of the first read burst (time-to-first-data).
  Picos FirstReadComplete = 0;
  /// Full (uncapped) phase volume, read + write.
  std::uint64_t TotalPhaseBytes = 0;
  /// Full-phase duration the steady-state rates imply: the slower of the
  /// two concurrent directions determines it.
  Picos EstimatedPhaseTime = 0;
  double MeanReqLatencyNanos = 0.0;
  double MaxReqLatencyNanos = 0.0;
  /// True when the simulation budget truncated the trace.
  bool Truncated = false;
  /// Refresh-window stalls during this phase.
  std::uint64_t RefreshStalls = 0;
  /// Fault-injection counters for this phase. The engine resets the
  /// device statistics on entry, so without these fields per-phase fault
  /// activity would be discarded before any report could read it.
  std::uint64_t EccRetries = 0;
  std::uint64_t ThrottleStalls = 0;
  std::uint64_t OfflineRedirects = 0;
  std::uint64_t OfflineFailed = 0;
  /// Simulator events executed for this phase (engine self-throughput;
  /// not part of the modelled hardware, so not exported to metrics).
  std::uint64_t SimEvents = 0;
};

/// Runs phases against a Memory3D instance.
class PhaseEngine {
public:
  /// \p MaxBytes / \p MaxOps cap the simulated volume per direction.
  PhaseEngine(Memory3D &Mem, EventQueue &Events, std::uint64_t MaxBytes,
              std::uint64_t MaxOps);

  /// Simulates the phase to completion (of the possibly capped volume)
  /// and returns its metrics. Resets memory statistics on entry.
  PhaseResult run(StreamParams Reads, StreamParams Writes);

  /// General form: any number of concurrent streams (e.g. the batch
  /// pipeline runs frame i's column phase against frame i+1's row
  /// phase). Directions are aggregated by each stream's IsWrite flag;
  /// FirstReadComplete reports the earliest read completion across all
  /// read streams.
  PhaseResult runStreams(std::vector<StreamParams> Streams);

  /// Attaches observability sinks (either may be null): the tracer gets
  /// one phase span per run, the registry gets the phase's memory
  /// counters exported at the end of each run (before the next run's
  /// reset can discard them).
  void setObservability(Tracer *T, MetricsRegistry *M,
                        std::uint32_t TracePid = 0) {
    Trace = T;
    Metrics = M;
    this->TracePid = TracePid;
  }

  /// Names the next run's phase span (sticky; must be a string literal).
  void setPhaseName(const char *Name) { PhaseName = Name; }

  /// Extra labels merged into every metric this engine exports (sticky).
  /// Multi-stack runs set {{"stack", S}} so the S engines' "mem.*" and
  /// "phase.*" series stay distinct; the default (empty) leaves
  /// single-stack metric names untouched.
  void setMetricsLabels(MetricLabels Extra) {
    ExtraLabels = std::move(Extra);
  }

  /// Attaches the vault-sharded engine (null detaches): run() then drives
  /// all shards through the windowed protocol instead of the host queue
  /// alone, and folds the per-vault latency shards at phase end. \p S
  /// must be the engine the Memory3D was built on, with host() == the
  /// queue this PhaseEngine was given.
  void setShardedEngine(ShardedEventQueue *S) { Sharded = S; }

private:
  Memory3D &Mem;
  EventQueue &Events;
  ShardedEventQueue *Sharded = nullptr;
  std::uint64_t MaxBytes;
  std::uint64_t MaxOps;
  Tracer *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;
  std::uint32_t TracePid = 0;
  const char *PhaseName = "phase";
  MetricLabels ExtraLabels;
};

} // namespace fft3d

#endif // FFT3D_CORE_PHASEENGINE_H
