//===- core/SystemConfig.h - Whole-system configuration ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregates every knob of the modelled system - the 3D memory, the FFT
/// kernel, the per-architecture stream parameters - with defaults
/// calibrated per DESIGN.md §6 (16 vaults x 5 GB/s = 80 GB/s peak; the
/// optimized kernel streams 8 elements per FPGA cycle; the baseline is
/// the naive single-element, blocking-access design the paper compares
/// against).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CORE_SYSTEMCONFIG_H
#define FFT3D_CORE_SYSTEMCONFIG_H

#include "layout/DataLayout.h"
#include "mem3d/Memory3D.h"

#include <cstdint>

namespace fft3d {

/// Domain of the input samples. Complex is the paper's workload; Real
/// switches both architectures to the irredundant half-spectrum path:
/// 4-byte real samples in, an N x (N/2) packed complex intermediate
/// (each row's real Nyquist bin folded into its real DC bin's imaginary
/// slot), and half the phase-2 memory traffic.
enum class InputDomain {
  Complex,
  Real,
};

const char *inputDomainName(InputDomain Input);

/// Per-architecture stream/kernel parameters.
struct ArchParams {
  /// Elements ingested/emitted per FPGA cycle (Table 2 "data parallelism").
  unsigned Lanes = 8;
  /// Kernel clock in MHz; 0 selects StreamingKernel::achievableClockMHz().
  double ClockMHz = 0.0;
  /// Outstanding read/write requests the front end sustains. The baseline
  /// is a blocking design (1); the optimized controller pipelines deeply.
  unsigned ReadWindow = 64;
  unsigned WriteWindow = 64;
  /// Layout of the intermediate (between-phase) matrix.
  LayoutKind Intermediate = LayoutKind::BlockDynamic;
  /// Vaults the dynamic layout spreads over (n_v).
  unsigned VaultsParallel = 16;
  /// Phase-1 write combining: buffer h full rows on chip so blocks are
  /// written whole (one activation per block) instead of in w-element
  /// chunks. Costs h * N elements of on-chip SRAM; off by default.
  bool WriteCombine = false;
};

/// Full system description for one experiment.
struct SystemConfig {
  /// Problem size: the matrix is N x N elements (complex, or real when
  /// Input is InputDomain::Real).
  std::uint64_t N = 2048;
  /// Sample domain; Real halves the intermediate and phase-2 volumes.
  InputDomain Input = InputDomain::Complex;
  MemoryConfig Mem;
  ArchParams Baseline;
  ArchParams Optimized;
  /// Simulation budget per stream direction; beyond it the phase engine
  /// extrapolates from the measured steady-state rate.
  std::uint64_t MaxSimBytesPerDirection = 32ull << 20;
  std::uint64_t MaxSimOpsPerDirection = 200000;
  /// Worker threads for the vault-sharded parallel simulation engine of
  /// one run (0 is treated as 1). Distinct from sweep threads: a sweep
  /// runs many simulations concurrently, SimThreads parallelises the
  /// vault shards *inside* each simulation. Results are bit-identical
  /// for every value.
  unsigned SimThreads = 1;

  /// Calibrated default system for an N x N problem.
  static SystemConfig forProblemSize(std::uint64_t N);

  /// Sanity-checks the combination (capacity, divisibility).
  void validate() const;
};

} // namespace fft3d

#endif // FFT3D_CORE_SYSTEMCONFIG_H
