//===- core/AutoTuner.cpp - Automatic layout optimization -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/AutoTuner.h"

#include "fft/Complex.h"
#include "layout/LinearLayouts.h"
#include "layout/TiledLayout.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace fft3d;

const char *fft3d::tuneObjectiveName(TuneObjective Objective) {
  switch (Objective) {
  case TuneObjective::Throughput:
    return "throughput";
  case TuneObjective::Energy:
    return "energy";
  case TuneObjective::ThroughputPerEnergy:
    return "throughput-per-energy";
  }
  fft3d_unreachable("unknown TuneObjective");
}

double TuneCandidate::score(TuneObjective Objective) const {
  switch (Objective) {
  case TuneObjective::Throughput:
    return Metrics.AppGBps;
  case TuneObjective::Energy:
    return Metrics.PicojoulesPerBit > 0.0
               ? 1.0 / Metrics.PicojoulesPerBit
               : 0.0;
  case TuneObjective::ThroughputPerEnergy:
    return Metrics.PicojoulesPerBit > 0.0
               ? Metrics.AppGBps / Metrics.PicojoulesPerBit
               : 0.0;
  }
  fft3d_unreachable("unknown TuneObjective");
}

bool TuneResult::eq1WithinFractionOfBest(double Fraction,
                                         TuneObjective Objective) const {
  const double Best = Candidates.front().score(Objective);
  for (const TuneCandidate &C : Candidates)
    if (C.Eq1Pick)
      return C.score(Objective) >= (1.0 - Fraction) * Best;
  return false;
}

AutoTuner::AutoTuner(const SystemConfig &Config, TuneOptions Options,
                     const EnergyParams &Energy)
    : Config(Config), Options(Options), Energy(Energy) {
  Config.validate();
}

void AutoTuner::addBlockCandidates(std::vector<TuneCandidate> &Out) const {
  const std::uint64_t N = Config.N;
  const std::uint64_t S = Config.Mem.Geo.RowBufferBytes / ElementBytes;
  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Eq1 = Planner.plan(N, Config.Optimized.VaultsParallel);

  for (std::uint64_t H = 1; H <= S; H *= 2) {
    const std::uint64_t W = S / H;
    if (H > N || W > N)
      continue;
    if (!Options.SweepBlockShapes && H != Eq1.H)
      continue;
    for (const bool Skew : {true, false}) {
      if (!Skew && !Options.SweepSkew)
        continue;
      TuneCandidate C;
      char Name[64];
      std::snprintf(Name, sizeof(Name), "block w=%llu h=%llu%s",
                    static_cast<unsigned long long>(W),
                    static_cast<unsigned long long>(H),
                    Skew ? "" : " (no skew)");
      C.Name = Name;
      C.Kind = LayoutKind::BlockDynamic;
      C.W = W;
      C.H = H;
      C.Skew = Skew;
      C.Eq1Pick = Skew && H == Eq1.H;
      Out.push_back(std::move(C));
    }
  }
}

TuneResult AutoTuner::tune(TuneObjective Objective) const {
  const std::uint64_t N = Config.N;
  const std::uint64_t MatrixBytes = N * N * ElementBytes;
  const std::uint64_t Stride =
      roundUp(MatrixBytes, Config.Mem.Geo.RowBufferBytes);
  const PhysAddr MidBase = Stride;
  const PhysAddr OutBase = 2 * Stride;

  std::vector<TuneCandidate> Candidates;
  if (Options.IncludeLinear) {
    TuneCandidate Row, Col;
    Row.Name = "row-major";
    Row.Kind = LayoutKind::RowMajor;
    Col.Name = "col-major";
    Col.Kind = LayoutKind::ColMajor;
    Candidates.push_back(Row);
    Candidates.push_back(Col);
  }
  if (Options.IncludeTiled) {
    TuneCandidate Tiled;
    Tiled.Name = "tiled (row-buffer tiles)";
    Tiled.Kind = LayoutKind::Tiled;
    Candidates.push_back(Tiled);
  }
  addBlockCandidates(Candidates);

  // Every candidate builds its own layouts and simulator state, so the
  // evaluations are independent and can fan out across the pool; the
  // ranking below only depends on the per-candidate metrics.
  const LayoutEvaluator Evaluator(Config, Energy);
  ThreadPool Pool(ThreadPool::resolveThreads(Options.Threads));
  Pool.parallelFor(Candidates.size(), [&](std::size_t Index) {
    TuneCandidate &C = Candidates[Index];
    std::unique_ptr<DataLayout> Mid, Out;
    switch (C.Kind) {
    case LayoutKind::RowMajor:
      Mid = std::make_unique<RowMajorLayout>(N, N, ElementBytes, MidBase);
      Out = std::make_unique<RowMajorLayout>(N, N, ElementBytes, OutBase);
      break;
    case LayoutKind::ColMajor:
      Mid = std::make_unique<ColMajorLayout>(N, N, ElementBytes, MidBase);
      Out = std::make_unique<ColMajorLayout>(N, N, ElementBytes, OutBase);
      break;
    case LayoutKind::Tiled:
      Mid = std::make_unique<TiledLayout>(TiledLayout::forRowBuffer(
          N, N, ElementBytes, MidBase, Config.Mem.Geo.RowBufferBytes));
      Out = std::make_unique<TiledLayout>(TiledLayout::forRowBuffer(
          N, N, ElementBytes, OutBase, Config.Mem.Geo.RowBufferBytes));
      break;
    case LayoutKind::BlockDynamic:
      Mid = std::make_unique<BlockDynamicLayout>(N, N, ElementBytes, MidBase,
                                                 C.W, C.H, C.Skew);
      Out = std::make_unique<BlockDynamicLayout>(N, N, ElementBytes, OutBase,
                                                 C.W, C.H, C.Skew);
      break;
    }
    C.Metrics = Evaluator.evaluate(Config.Optimized, *Mid, *Out);
  });

  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [Objective](const TuneCandidate &A,
                               const TuneCandidate &B) {
                     return A.score(Objective) > B.score(Objective);
                   });

  TuneResult Result;
  Result.Objective = Objective;
  Result.Candidates = std::move(Candidates);
  Result.PoolStats = Pool.lastRunStats();
  return Result;
}
