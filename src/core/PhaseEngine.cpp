//===- core/PhaseEngine.cpp - Drives one FFT phase through memory ---------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/PhaseEngine.h"

#include "sim/ShardedEventQueue.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

using namespace fft3d;

namespace {

/// Tracks how many drivers can still submit. When the last one exhausts,
/// the host provably never calls Memory3D::submit again this run (every
/// remaining host event is a completion or a wakeup whose pump() body is
/// empty), so the sharded engine may free-run vault shards barrier-free
/// to the end of the phase.
struct QuiescenceGate {
  unsigned Active = 0;
  ShardedEventQueue *Engine = nullptr;

  void noteExhausted() {
    assert(Active != 0 && "driver exhausted twice");
    if (--Active == 0 && Engine)
      Engine->setHostQuiescentUntil(std::numeric_limits<Picos>::max());
  }
};

/// Issues one direction's ops with pacing and window control.
class StreamDriver {
public:
  StreamDriver(Memory3D &Mem, EventQueue &Events, const StreamParams &Params,
               std::uint64_t MaxBytes, std::uint64_t MaxOps, Picos Start,
               QuiescenceGate &Gate)
      : Mem(Mem), Events(Events), Params(Params), MaxBytes(MaxBytes),
        MaxOps(MaxOps), Start(Start), Gate(Gate) {
    if (!Params.Trace || Params.Window == 0)
      Exhausted = true;
    else
      ++Gate.Active;
  }

  /// Issues every op that is currently allowed; arms a wakeup if pacing
  /// blocks progress.
  void pump() {
    while (!Exhausted && InFlight < Params.Window) {
      if (!Pending) {
        if (BytesIssued >= MaxBytes || OpsIssued >= MaxOps) {
          Truncated = Params.Trace->next().has_value();
          markExhausted();
          break;
        }
        Pending = Params.Trace->next();
        if (!Pending) {
          markExhausted();
          break;
        }
      }
      const Picos Allowed = allowedTime();
      if (Events.now() < Allowed) {
        armWakeup(Allowed);
        return;
      }
      issuePending();
    }
  }

  bool drained() const { return Exhausted && InFlight == 0; }
  bool truncated() const { return Truncated; }
  std::uint64_t bytesIssued() const { return BytesIssued; }
  std::uint64_t opsIssued() const { return OpsIssued; }
  Picos lastComplete() const { return LastComplete; }
  Picos firstComplete() const { return FirstComplete; }

  /// Steady-state rate over this direction's active window, GB/s.
  double rateGBps() const {
    if (BytesIssued == 0 || LastComplete <= FirstIssue)
      return 0.0;
    return bytesOverPicosToGBps(BytesIssued, LastComplete - FirstIssue);
  }

  /// Full-trace duration this rate implies.
  Picos estimatedFullTime() const {
    const double Rate = rateGBps();
    if (Rate <= 0.0 || !Params.Trace)
      return 0;
    return static_cast<Picos>(
        static_cast<double>(Params.Trace->totalBytes()) / Rate *
        static_cast<double>(PicosPerNano));
  }

private:
  /// This driver just ran out of budget or trace: it will never submit
  /// again, and the gate learns about it (only counted drivers get here -
  /// pump() is a no-op once Exhausted is set).
  void markExhausted() {
    Exhausted = true;
    Gate.noteExhausted();
  }

  /// Earliest time the pending op may issue under kernel pacing.
  Picos allowedTime() const {
    Picos T = Start + Params.StartLag;
    if (Params.PaceGBps > 0.0)
      T += static_cast<Picos>(static_cast<double>(BytesIssued) /
                                  Params.PaceGBps *
                                  static_cast<double>(PicosPerNano) +
                              0.5);
    return T;
  }

  void issuePending() {
    if (OpsIssued == 0)
      FirstIssue = Events.now();
    MemRequest Req;
    Req.IsWrite = Params.IsWrite;
    Req.Addr = Pending->Addr;
    Req.Bytes = Pending->Bytes;
    Pending.reset();
    ++InFlight;
    ++OpsIssued;
    BytesIssued += Req.Bytes;
    Mem.submit(Req, [this](const MemRequest &, Picos Done) {
      assert(InFlight != 0 && "completion without an in-flight request");
      --InFlight;
      LastComplete = std::max(LastComplete, Done);
      if (FirstComplete == 0)
        FirstComplete = Done;
      pump();
    });
  }

  void armWakeup(Picos When) {
    if (WakeArmed)
      return;
    WakeArmed = true;
    Events.scheduleAt(When, [this] {
      WakeArmed = false;
      pump();
    });
  }

  Memory3D &Mem;
  EventQueue &Events;
  StreamParams Params;
  std::uint64_t MaxBytes;
  std::uint64_t MaxOps;
  Picos Start;
  QuiescenceGate &Gate;

  std::optional<TraceOp> Pending;
  Picos FirstIssue = 0;
  unsigned InFlight = 0;
  std::uint64_t BytesIssued = 0;
  std::uint64_t OpsIssued = 0;
  Picos LastComplete = 0;
  Picos FirstComplete = 0;
  bool Exhausted = false;
  bool Truncated = false;
  bool WakeArmed = false;
};

} // namespace

PhaseEngine::PhaseEngine(Memory3D &Mem, EventQueue &Events,
                         std::uint64_t MaxBytes, std::uint64_t MaxOps)
    : Mem(Mem), Events(Events), MaxBytes(MaxBytes), MaxOps(MaxOps) {}

PhaseResult PhaseEngine::run(StreamParams Reads, StreamParams Writes) {
  assert(!Reads.IsWrite && "read stream marked as write");
  Writes.IsWrite = true;
  return runStreams({Reads, Writes});
}

PhaseResult PhaseEngine::runStreams(std::vector<StreamParams> Streams) {
  Mem.stats().reset();
  const Picos Start = Events.now();
  ShardedEventQueue::WindowStats WinBefore;
  if (Sharded)
    WinBefore = Sharded->windowStats();

  QuiescenceGate Gate;
  Gate.Engine = Sharded;
  std::vector<std::unique_ptr<StreamDriver>> Drivers;
  Drivers.reserve(Streams.size());
  for (const StreamParams &S : Streams)
    Drivers.push_back(
        std::make_unique<StreamDriver>(Mem, Events, S, MaxBytes, MaxOps,
                                       Start, Gate));
  // A phase with no traffic at all is quiescent from the start.
  if (Gate.Active == 0 && Sharded)
    Sharded->setHostQuiescentUntil(std::numeric_limits<Picos>::max());
  for (auto &D : Drivers)
    D->pump();

  PhaseResult Result;
  Result.SimEvents = Sharded ? Sharded->run() : Events.run();
  // Sequential again from here; pull the per-vault latency shards into
  // the device-wide statistic (fixed vault order, so bit-identical for
  // any thread count) before anything reads it.
  Mem.stats().foldLatencyShards();
  Picos End = Start;
  for (std::size_t I = 0; I != Drivers.size(); ++I) {
    StreamDriver &D = *Drivers[I];
    if (!D.drained())
      reportFatalError("phase simulation deadlocked: stream not drained");
    End = std::max(End, D.lastComplete());
    Result.Ops += D.opsIssued();
    Result.Truncated = Result.Truncated || D.truncated();
    Result.EstimatedPhaseTime =
        std::max(Result.EstimatedPhaseTime, D.estimatedFullTime());
    if (Streams[I].Trace)
      Result.TotalPhaseBytes += Streams[I].Trace->totalBytes();
    if (Streams[I].IsWrite) {
      Result.BytesWritten += D.bytesIssued();
      Result.WriteGBps += D.rateGBps();
    } else {
      Result.BytesRead += D.bytesIssued();
      Result.ReadGBps += D.rateGBps();
      const Picos First = D.firstComplete();
      if (First > Start &&
          (Result.FirstReadComplete == 0 ||
           First - Start < Result.FirstReadComplete))
        Result.FirstReadComplete = First - Start;
    }
  }
  Result.Elapsed = End > Start ? End - Start : 0;
  Result.ThroughputGBps = Result.ReadGBps + Result.WriteGBps;
  Result.PeakUtilization = Result.ThroughputGBps / Mem.peakBandwidthGBps();
  const VaultStats Total = Mem.stats().total();
  Result.RowActivations = Total.RowActivations;
  Result.RowHitRate = Total.hitRate();
  Result.MeanReqLatencyNanos = Mem.stats().latencyNanos().mean();
  Result.MaxReqLatencyNanos = Mem.stats().latencyNanos().max();
  Result.RefreshStalls = Total.RefreshStalls;
  Result.EccRetries = Total.EccRetries;
  Result.ThrottleStalls = Total.ThrottleStalls;
  Result.OfflineRedirects = Total.OfflineRedirects;
  Result.OfflineFailed = Total.OfflineFailed;

  if (Trace && Trace->wants(TraceCatPhase))
    Trace->span(TraceCatPhase, PhaseName, TracePid, /*Tid=*/0, Start,
                Result.Elapsed, "bytes",
                Result.BytesRead + Result.BytesWritten, "ops", Result.Ops);
  // Export before the next phase's reset discards this phase's counters.
  if (Metrics) {
    Mem.stats().exportTo(*Metrics, ExtraLabels);
    MetricLabels Phase = ExtraLabels;
    Phase.add("phase", PhaseName);
    Metrics->counter("phase.runs", Phase).add(1);
    Metrics->counter("phase.elapsed_ps", Phase).add(Result.Elapsed);
    Metrics->counter("phase.bytes", Phase)
        .add(Result.BytesRead + Result.BytesWritten);
    Metrics->counter("phase.ops", Phase).add(Result.Ops);
    Metrics->counter("phase.row_activations", Phase)
        .add(Result.RowActivations);
    Metrics->gauge("phase.throughput_gbps", Phase)
        .set(Result.ThroughputGBps);
    Metrics->gauge("phase.row_hit_rate", Phase).set(Result.RowHitRate);
    if (Sharded) {
      // Window-protocol accounting for this phase: how many barrier
      // rounds the sharded engine needed and how wide its windows got
      // (the width histogram is bucketed in static-lookahead multiples,
      // so bucket 0 is "no wider than the old engine's whole window").
      const ShardedEventQueue::WindowStats &W = Sharded->windowStats();
      Metrics->counter("sim.windows", Phase).add(W.Windows -
                                                 WinBefore.Windows);
      Metrics->counter("sim.barriers", Phase).add(W.Barriers -
                                                  WinBefore.Barriers);
      Metrics->counter("sim.stream_windows", Phase)
          .add(W.StreamWindows - WinBefore.StreamWindows);
      Metrics->counter("sim.mailbox_overflows", Phase)
          .add(W.MailboxOverflows - WinBefore.MailboxOverflows);
      Metrics->counter("sim.lookahead_violations", Phase)
          .add(W.LookaheadViolations - WinBefore.LookaheadViolations);
      const double WidthPs = static_cast<double>(Sharded->lookahead());
      MetricHistogram &Hist = Metrics->histogram(
          "sim.window.width_ps", WidthPs,
          ShardedEventQueue::WindowStats::NumWidthBuckets, Phase);
      for (unsigned I = 0;
           I != ShardedEventQueue::WindowStats::NumWidthBuckets; ++I)
        Hist.observeMany((static_cast<double>(I) + 0.5) * WidthPs,
                         W.WidthBuckets[I] - WinBefore.WidthBuckets[I]);
    }
  }
  return Result;
}
