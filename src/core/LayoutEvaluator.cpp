//===- core/LayoutEvaluator.cpp - Evaluate a layout end to end ------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/LayoutEvaluator.h"

#include "core/AnalyticalModel.h"
#include "fft/StreamingKernel.h"
#include "layout/BlockDynamicLayout.h"
#include "layout/LinearLayouts.h"
#include "support/MathUtils.h"

using namespace fft3d;

LayoutEvaluator::LayoutEvaluator(const SystemConfig &Config,
                                 const EnergyParams &Params)
    : Config(Config), Energy(Params) {
  Config.validate();
}

PhaseResult LayoutEvaluator::runWith(const ArchParams &Arch,
                                     TraceSource &Reads, TraceSource &Writes,
                                     EnergyBreakdown *EnergyOut) const {
  EventQueue Events;
  Memory3D Mem(Events, Config.Mem);
  PhaseEngine Engine(Mem, Events, Config.MaxSimBytesPerDirection,
                     Config.MaxSimOpsPerDirection);
  const StreamingKernel Kernel(Config.N, Arch.Lanes, Arch.ClockMHz);
  const PhaseResult Result = Engine.run(
      {&Reads, false, Arch.ReadWindow, Kernel.streamGBps(), 0},
      {&Writes, true, Arch.WriteWindow, Kernel.streamGBps(),
       Kernel.pipelineFillTime()});
  if (EnergyOut)
    *EnergyOut = Energy.compute(Mem.stats(), Result.Elapsed,
                                Config.Mem.Geo.bytesPerBeat());
  return Result;
}

PhaseResult LayoutEvaluator::runRowPhase(const ArchParams &Arch,
                                         const DataLayout &Mid,
                                         EnergyBreakdown *EnergyOut) const {
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Mem.Geo.RowBufferBytes);
  const RowMajorLayout Input(Config.N, Config.N, Mid.elementBytes(),
                             /*Base=*/0);
  RowScanTrace Reads(Input, RowBuf);
  if (Mid.kind() == LayoutKind::BlockDynamic) {
    const auto &Blocks = static_cast<const BlockDynamicLayout &>(Mid);
    if (Arch.WriteCombine) {
      // A full block-row is accumulated on chip and written as whole
      // blocks: one activation per row buffer.
      BlockTrace Writes(Blocks, BlockOrder::RowMajorBlocks);
      return runWith(Arch, Reads, Writes, EnergyOut);
    }
    ChunkedBlockWriteTrace Writes(Blocks);
    return runWith(Arch, Reads, Writes, EnergyOut);
  }
  RowScanTrace Writes(Mid, RowBuf);
  return runWith(Arch, Reads, Writes, EnergyOut);
}

PhaseResult LayoutEvaluator::runColumnPhase(const ArchParams &Arch,
                                            const DataLayout &Mid,
                                            const DataLayout &Out,
                                            EnergyBreakdown *EnergyOut) const {
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Mem.Geo.RowBufferBytes);
  if (Mid.kind() == LayoutKind::BlockDynamic &&
      Out.kind() == LayoutKind::BlockDynamic) {
    const auto &MidBlocks = static_cast<const BlockDynamicLayout &>(Mid);
    const auto &OutBlocks = static_cast<const BlockDynamicLayout &>(Out);
    BlockTrace Reads(MidBlocks, BlockOrder::ColMajorBlocks);
    BlockTrace Writes(OutBlocks, BlockOrder::ColMajorBlocks);
    return runWith(Arch, Reads, Writes, EnergyOut);
  }
  ColScanTrace Reads(Mid, RowBuf);
  ColScanTrace Writes(Out, RowBuf);
  return runWith(Arch, Reads, Writes, EnergyOut);
}

LayoutMetrics LayoutEvaluator::evaluate(const ArchParams &Arch,
                                        const DataLayout &Mid,
                                        const DataLayout &Out) const {
  LayoutMetrics M;
  EnergyBreakdown RowEnergy, ColEnergy;
  M.RowPhase = runRowPhase(Arch, Mid, &RowEnergy);
  M.ColPhase = runColumnPhase(Arch, Mid, Out, &ColEnergy);
  M.AppGBps = AnalyticalModel::harmonicCombine(M.RowPhase.ThroughputGBps,
                                               M.ColPhase.ThroughputGBps);
  const std::uint64_t Bytes =
      M.RowPhase.BytesRead + M.RowPhase.BytesWritten + M.ColPhase.BytesRead +
      M.ColPhase.BytesWritten;
  const double TotalPJ = RowEnergy.totalPJ() + ColEnergy.totalPJ();
  M.PicojoulesPerBit =
      Bytes == 0 ? 0.0 : TotalPJ / (8.0 * static_cast<double>(Bytes));
  const std::uint64_t Activations =
      M.RowPhase.RowActivations + M.ColPhase.RowActivations;
  M.ActivationsPerKiB = Bytes == 0 ? 0.0
                                   : static_cast<double>(Activations) /
                                         (static_cast<double>(Bytes) /
                                          1024.0);
  return M;
}
