//===- core/LayoutEvaluator.h - Evaluate a layout end to end ----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs both 2D FFT phases against the memory simulator for an arbitrary
/// intermediate layout and reports throughput *and* energy. This is the
/// measurement core shared by the layout-comparison ablation and the
/// AutoTuner (the paper's stated future work: a framework that picks the
/// layout automatically for new 3D memory technologies).
///
/// Trace selection per layout family:
///  - BlockDynamic: whole-block reads/writes in phase 2, chunked block
///    writes in phase 1 (the optimized data path);
///  - everything else: coalesced row scans in phase 1 and column scans
///    in phase 2 (whatever contiguity the layout offers).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CORE_LAYOUTEVALUATOR_H
#define FFT3D_CORE_LAYOUTEVALUATOR_H

#include "core/PhaseEngine.h"
#include "core/SystemConfig.h"
#include "mem3d/Energy.h"

namespace fft3d {

/// Combined throughput/energy verdict for one layout under one front end.
struct LayoutMetrics {
  PhaseResult RowPhase;
  PhaseResult ColPhase;
  /// Harmonic combination of the two equal-volume phases, GB/s.
  double AppGBps = 0.0;
  /// Dynamic + static energy intensity over both simulated phases.
  double PicojoulesPerBit = 0.0;
  /// Row activations per KiB moved (the quantity reference [6] frames).
  double ActivationsPerKiB = 0.0;
};

/// Stateless phase runner for layout studies.
class LayoutEvaluator {
public:
  explicit LayoutEvaluator(const SystemConfig &Config,
                           const EnergyParams &Energy = EnergyParams());

  const SystemConfig &config() const { return Config; }

  /// Phase 1 (row FFTs): sequential input reads + layout writes.
  /// \p Energy, when non-null, receives the phase's energy breakdown.
  PhaseResult runRowPhase(const ArchParams &Arch, const DataLayout &Mid,
                          EnergyBreakdown *Energy = nullptr) const;

  /// Phase 2 (column FFTs): layout reads + output-layout writes.
  PhaseResult runColumnPhase(const ArchParams &Arch, const DataLayout &Mid,
                             const DataLayout &Out,
                             EnergyBreakdown *Energy = nullptr) const;

  /// Both phases + combined metrics.
  LayoutMetrics evaluate(const ArchParams &Arch, const DataLayout &Mid,
                         const DataLayout &Out) const;

private:
  PhaseResult runWith(const ArchParams &Arch, TraceSource &Reads,
                      TraceSource &Writes, EnergyBreakdown *Energy) const;

  SystemConfig Config;
  EnergyModel Energy;
};

} // namespace fft3d

#endif // FFT3D_CORE_LAYOUTEVALUATOR_H
