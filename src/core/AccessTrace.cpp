//===- core/AccessTrace.cpp - Phase access-trace generators ---------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/AccessTrace.h"

#include <algorithm>
#include <cassert>

using namespace fft3d;

TraceSource::~TraceSource() = default;

//===----------------------------------------------------------------------===//
// RowScanTrace
//===----------------------------------------------------------------------===//

RowScanTrace::RowScanTrace(const DataLayout &Layout,
                           std::uint32_t MaxBurstBytes)
    : Layout(Layout), MaxBurstBytes(MaxBurstBytes) {
  assert(MaxBurstBytes >= Layout.elementBytes() && "burst below element size");
}

std::optional<TraceOp> RowScanTrace::next() {
  if (Row == Layout.numRows())
    return std::nullopt;
  const std::uint64_t MaxElems = MaxBurstBytes / Layout.elementBytes();
  const std::uint64_t Run =
      std::min(Layout.contiguousRowRun(Row, Col), MaxElems);
  TraceOp Op;
  Op.Addr = Layout.addressOf(Row, Col);
  Op.Bytes = static_cast<std::uint32_t>(Run * Layout.elementBytes());
  Col += Run;
  if (Col == Layout.numCols()) {
    Col = 0;
    ++Row;
  }
  return Op;
}

std::uint64_t RowScanTrace::totalBytes() const { return Layout.sizeBytes(); }

void RowScanTrace::reset() { Row = Col = 0; }

//===----------------------------------------------------------------------===//
// ColScanTrace
//===----------------------------------------------------------------------===//

ColScanTrace::ColScanTrace(const DataLayout &Layout,
                           std::uint32_t MaxBurstBytes)
    : Layout(Layout), MaxBurstBytes(MaxBurstBytes) {
  assert(MaxBurstBytes >= Layout.elementBytes() && "burst below element size");
}

std::optional<TraceOp> ColScanTrace::next() {
  if (Col == Layout.numCols())
    return std::nullopt;
  const std::uint64_t MaxElems = MaxBurstBytes / Layout.elementBytes();
  const std::uint64_t Run =
      std::min(Layout.contiguousColRun(Row, Col), MaxElems);
  TraceOp Op;
  Op.Addr = Layout.addressOf(Row, Col);
  Op.Bytes = static_cast<std::uint32_t>(Run * Layout.elementBytes());
  Row += Run;
  if (Row == Layout.numRows()) {
    Row = 0;
    ++Col;
  }
  return Op;
}

std::uint64_t ColScanTrace::totalBytes() const { return Layout.sizeBytes(); }

void ColScanTrace::reset() { Row = Col = 0; }

//===----------------------------------------------------------------------===//
// BlockTrace
//===----------------------------------------------------------------------===//

BlockTrace::BlockTrace(const BlockDynamicLayout &Layout, BlockOrder Order)
    : Layout(Layout), Order(Order) {}

std::optional<TraceOp> BlockTrace::next() {
  const std::uint64_t Bc = Layout.blocksPerRow();
  const std::uint64_t Br = Layout.blocksPerCol();
  if (Index == Bc * Br)
    return std::nullopt;
  std::uint64_t BlockRow, BlockCol;
  if (Order == BlockOrder::RowMajorBlocks) {
    BlockRow = Index / Bc;
    BlockCol = Index % Bc;
  } else {
    BlockCol = Index / Br;
    BlockRow = Index % Br;
  }
  ++Index;
  TraceOp Op;
  Op.Addr = Layout.blockBase(BlockRow, BlockCol);
  Op.Bytes = static_cast<std::uint32_t>(Layout.blockBytes());
  return Op;
}

std::uint64_t BlockTrace::totalBytes() const { return Layout.sizeBytes(); }

void BlockTrace::reset() { Index = 0; }

//===----------------------------------------------------------------------===//
// TileScanTrace
//===----------------------------------------------------------------------===//

TileScanTrace::TileScanTrace(const DataLayout &Layout, std::uint64_t TileRows,
                             std::uint64_t TileCols)
    : Layout(Layout), TileRows(TileRows), TileCols(TileCols) {
  assert(TileRows != 0 && TileCols != 0 &&
         Layout.numRows() % TileRows == 0 &&
         Layout.numCols() % TileCols == 0 &&
         "tile shape must divide the matrix");
}

std::optional<TraceOp> TileScanTrace::next() {
  const std::uint64_t TilesPerRow = Layout.numCols() / TileCols;
  const std::uint64_t TilesPerCol = Layout.numRows() / TileRows;
  if (TileRow == TilesPerCol)
    return std::nullopt;
  TraceOp Op;
  Op.Addr = Layout.addressOf(TileRow * TileRows + InRow, TileCol * TileCols);
  Op.Bytes = static_cast<std::uint32_t>(TileCols * Layout.elementBytes());
  if (++InRow == TileRows) {
    InRow = 0;
    if (++TileCol == TilesPerRow) {
      TileCol = 0;
      ++TileRow;
    }
  }
  return Op;
}

std::uint64_t TileScanTrace::totalBytes() const { return Layout.sizeBytes(); }

void TileScanTrace::reset() { TileRow = TileCol = InRow = 0; }

//===----------------------------------------------------------------------===//
// ChunkedBlockWriteTrace
//===----------------------------------------------------------------------===//

ChunkedBlockWriteTrace::ChunkedBlockWriteTrace(
    const BlockDynamicLayout &Layout)
    : Layout(Layout) {}

std::optional<TraceOp> ChunkedBlockWriteTrace::next() {
  if (Row == Layout.numRows())
    return std::nullopt;
  const std::uint64_t W = Layout.blockWidth();
  const std::uint64_t H = Layout.blockHeight();
  TraceOp Op;
  Op.Addr = Layout.blockBase(Row / H, BlockCol) +
            (Row % H) * W * Layout.elementBytes();
  Op.Bytes = static_cast<std::uint32_t>(W * Layout.elementBytes());
  if (++BlockCol == Layout.blocksPerRow()) {
    BlockCol = 0;
    ++Row;
  }
  return Op;
}

std::uint64_t ChunkedBlockWriteTrace::totalBytes() const {
  return Layout.sizeBytes();
}

void ChunkedBlockWriteTrace::reset() { Row = BlockCol = 0; }
