//===- core/AnalyticalModel.cpp - Closed-form performance model -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/AnalyticalModel.h"

#include "fft/StreamingKernel.h"
#include "support/MathUtils.h"

#include <algorithm>

using namespace fft3d;

AnalyticalModel::AnalyticalModel(const SystemConfig &Config) : Config(Config) {
  Config.validate();
}

double AnalyticalModel::peakGBps() const {
  const Geometry &G = Config.Mem.Geo;
  return G.NumVaults * static_cast<double>(G.bytesPerBeat()) /
         picosToNanos(Config.Mem.Time.TsvPeriod);
}

double AnalyticalModel::kernelStreamGBps(const ArchParams &Arch) const {
  const double Clock = Arch.ClockMHz > 0.0
                           ? Arch.ClockMHz
                           : StreamingKernel::achievableClockMHz(Config.N);
  return Arch.Lanes * 8.0 * Clock * 1e6 / 1e9;
}

double AnalyticalModel::baselineColumnGBps() const {
  // Every element pays the full blocking round trip: activate the row,
  // access the column, move one beat, plus the command slot.
  const Timing &T = Config.Mem.Time;
  const double PerAccessNanos = picosToNanos(
      T.ActivateLatency + T.AccessLatency + T.TsvPeriod + T.TsvPeriod);
  const double OneDirection = 8.0 / PerAccessNanos; // GB/s
  return 2.0 * OneDirection;
}

double AnalyticalModel::blockStreamMemoryLimitGBps() const {
  // Streaming whole row buffers: each vault alternates banks, so the
  // activation of the next block overlaps the current transfer as long
  // as the transfer outlasts t_diff_row. Efficiency is the transfer time
  // over the max of transfer time and activation spacing.
  const Geometry &G = Config.Mem.Geo;
  const Timing &T = Config.Mem.Time;
  const double TransferNanos =
      picosToNanos(T.TsvPeriod) *
      static_cast<double>(G.RowBufferBytes / G.bytesPerBeat());
  const double Spacing = picosToNanos(T.TDiffRow);
  const double Efficiency = TransferNanos / std::max(TransferNanos, Spacing);
  return peakGBps() * Efficiency;
}

double AnalyticalModel::blockingSequentialGBps(std::uint32_t BurstBytes) const {
  const Timing &T = Config.Mem.Time;
  const double Beats = static_cast<double>(
      ceilDiv(BurstBytes, Config.Mem.Geo.bytesPerBeat()));
  const double PerBurstNanos =
      picosToNanos(T.ActivateLatency + T.AccessLatency) +
      Beats * picosToNanos(T.TsvPeriod);
  return 2.0 * BurstBytes / PerBurstNanos;
}

double AnalyticalModel::optimizedColumnGBps() const {
  const double KernelBound = 2.0 * kernelStreamGBps(Config.Optimized);
  return std::min(KernelBound, blockStreamMemoryLimitGBps());
}

double AnalyticalModel::rowPhaseGBps(const ArchParams &Arch) const {
  const double KernelBound = 2.0 * kernelStreamGBps(Arch);
  // Row-order streaming is sequential under both intermediates; with a
  // blocking window the limit is the burst round trip, otherwise the
  // block-stream limit.
  const double MemoryBound =
      Arch.ReadWindow <= 1
          ? blockingSequentialGBps(
                static_cast<std::uint32_t>(Config.Mem.Geo.RowBufferBytes))
          : blockStreamMemoryLimitGBps();
  return std::min(KernelBound, MemoryBound);
}

Picos AnalyticalModel::appLatency(const ArchParams &Arch) const {
  const double Clock = Arch.ClockMHz > 0.0
                           ? Arch.ClockMHz
                           : StreamingKernel::achievableClockMHz(Config.N);
  const StreamingKernel Kernel(Config.N, Arch.Lanes, Clock);
  // First output needs the kernel pipeline filled with N elements, which
  // arrive at the phase-1 read rate, plus the first access's round trip.
  const Timing &T = Config.Mem.Time;
  const Picos FirstAccess =
      T.ActivateLatency + T.AccessLatency + T.TsvPeriod;
  const double ReadGBps = rowPhaseGBps(Arch) / 2.0;
  const Picos FillInput = static_cast<Picos>(
      static_cast<double>(Config.N) * 8.0 / ReadGBps *
      static_cast<double>(PicosPerNano));
  return FirstAccess + FillInput + Kernel.pipelineFillTime();
}

AppEstimate AnalyticalModel::estimateApp() const {
  AppEstimate E;
  E.BaselineRowGBps = rowPhaseGBps(Config.Baseline);
  E.BaselineColGBps = baselineColumnGBps();
  E.OptimizedRowGBps = rowPhaseGBps(Config.Optimized);
  E.OptimizedColGBps = optimizedColumnGBps();
  E.BaselineAppGBps = harmonicCombine(E.BaselineRowGBps, E.BaselineColGBps);
  E.OptimizedAppGBps = harmonicCombine(E.OptimizedRowGBps, E.OptimizedColGBps);
  E.ImprovementFraction =
      (E.OptimizedAppGBps - E.BaselineAppGBps) / E.OptimizedAppGBps;
  E.BaselineLatency = appLatency(Config.Baseline);
  E.OptimizedLatency = appLatency(Config.Optimized);
  E.BaselineParallelism = Config.Baseline.Lanes;
  E.OptimizedParallelism = Config.Optimized.Lanes;
  return E;
}

double AnalyticalModel::harmonicCombine(double A, double B) {
  if (A <= 0.0 || B <= 0.0)
    return 0.0;
  return 2.0 / (1.0 / A + 1.0 / B);
}
