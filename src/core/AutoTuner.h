//===- core/AutoTuner.h - Automatic layout optimization ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stated future work, built: "a design framework targeted
/// at throughput-oriented signal processing kernels, which enables
/// automatic data layout optimizations addressing new 3D memory
/// technologies."
///
/// Given a SystemConfig describing any 3D memory (geometry + timing),
/// the tuner enumerates the layout design space - the linear layouts,
/// the row-buffer tiled mapping, and every block shape with w*h filling
/// one row buffer, with and without the vault skew - measures each with
/// the event-driven simulator, and returns the candidates ranked by the
/// requested objective (throughput, energy per bit, or a throughput-per-
/// energy compromise). Eq. 1's analytical pick is marked so its verdict
/// can be compared with the measured optimum.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CORE_AUTOTUNER_H
#define FFT3D_CORE_AUTOTUNER_H

#include "core/LayoutEvaluator.h"
#include "layout/LayoutPlanner.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace fft3d {

/// What the tuner maximizes.
enum class TuneObjective {
  /// Application GB/s (harmonic over the phases).
  Throughput,
  /// Minimize pJ/bit.
  Energy,
  /// Maximize GB/s per (pJ/bit): throughput with an energy tiebreak.
  ThroughputPerEnergy,
};

const char *tuneObjectiveName(TuneObjective Objective);

/// One evaluated point of the design space.
struct TuneCandidate {
  std::string Name;
  LayoutKind Kind = LayoutKind::BlockDynamic;
  /// Block shape (block-dynamic candidates only).
  std::uint64_t W = 0;
  std::uint64_t H = 0;
  bool Skew = true;
  /// True if this is the shape Eq. 1 would pick.
  bool Eq1Pick = false;
  LayoutMetrics Metrics;

  /// Objective score (higher is better for every objective).
  double score(TuneObjective Objective) const;
};

/// Tuning result: candidates sorted best-first.
struct TuneResult {
  TuneObjective Objective = TuneObjective::Throughput;
  std::vector<TuneCandidate> Candidates;
  /// Per-executor work accounting from the candidate fan-out (slot 0 is
  /// the calling thread). Benchmarks use it to tell imbalance from
  /// oversubscription when sweep speedups look flat.
  std::vector<ThreadPool::WorkerStats> PoolStats;

  const TuneCandidate &best() const { return Candidates.front(); }

  /// True if Eq. 1's shape is within \p Fraction of the best score.
  bool eq1WithinFractionOfBest(double Fraction,
                               TuneObjective Objective) const;
};

/// Options restricting the search space.
struct TuneOptions {
  bool IncludeLinear = true;
  bool IncludeTiled = true;
  bool SweepBlockShapes = true;
  bool SweepSkew = true;
  /// Candidates evaluated concurrently (each owns its simulator, so the
  /// ranking is identical for any value). 0 = hardware concurrency.
  unsigned Threads = 1;
};

/// Enumerates, simulates and ranks intermediate layouts.
class AutoTuner {
public:
  AutoTuner(const SystemConfig &Config, TuneOptions Options = TuneOptions(),
            const EnergyParams &Energy = EnergyParams());

  /// Runs the search. Every candidate simulates both phases, so cost is
  /// (number of candidates) x (simulation budget in the SystemConfig).
  TuneResult tune(TuneObjective Objective = TuneObjective::Throughput) const;

private:
  void addBlockCandidates(std::vector<TuneCandidate> &Out) const;

  SystemConfig Config;
  TuneOptions Options;
  EnergyParams Energy;
};

} // namespace fft3d

#endif // FFT3D_CORE_AUTOTUNER_H
