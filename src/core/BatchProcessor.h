//===- core/BatchProcessor.h - Multi-frame pipelined 2D FFTs ----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming workloads (video, radar dwells) transform frame after
/// frame. With double-buffered memory regions and two kernel instances,
/// frame i's column phase can overlap frame i+1's row phase - the
/// natural extension of the paper's streaming argument. The batch
/// processor measures the *steady overlapped interval* by simulating
/// all four streams (P1 reads + P1 writes + P2 reads + P2 writes) against
/// the memory at once, so cross-phase contention on the vaults is real,
/// then assembles the F-frame pipeline timing:
///
///   total(F) = T_phase + (F - 1) * max(T_phase, T_overlap) + T_phase
///
/// where T_overlap is the measured duration of the overlapped steady
/// stage.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CORE_BATCHPROCESSOR_H
#define FFT3D_CORE_BATCHPROCESSOR_H

#include "core/LayoutEvaluator.h"
#include "core/SystemConfig.h"

namespace fft3d {

/// Timing of an F-frame pipelined batch.
struct BatchReport {
  unsigned Frames = 0;
  /// Duration of one phase alone (both phases measure equal here:
  /// kernel-bound).
  Picos PhaseTime = 0;
  /// Duration of the overlapped stage (frame i phase 2 + frame i+1
  /// phase 1 sharing the memory).
  Picos OverlapTime = 0;
  /// Combined memory traffic rate during the overlapped stage.
  double OverlapGBps = 0.0;
  /// Row-buffer behaviour of the overlapped stage, where the four
  /// concurrent streams contend for vault row buffers and the memory
  /// scheduling policy (FR-FCFS vs FCFS) matters most.
  double OverlapRowHitRate = 0.0;
  std::uint64_t OverlapRowActivations = 0;
  /// End-to-end estimate for the batch.
  Picos TotalTime = 0;
  /// Frames per second at steady state.
  double FramesPerSecond = 0.0;
  /// True when the overlapped stage is no slower than a lone phase
  /// (i.e. the memory absorbs both phases at full kernel rate).
  bool FullyOverlapped = false;
};

/// Simulates pipelined batches of 2D FFT frames on the optimized
/// architecture.
class BatchProcessor {
public:
  explicit BatchProcessor(const SystemConfig &Config);

  /// Measures the lone-phase and overlapped-stage timings and assembles
  /// the pipeline estimate for \p Frames frames.
  BatchReport run(unsigned Frames) const;

private:
  SystemConfig Config;
};

} // namespace fft3d

#endif // FFT3D_CORE_BATCHPROCESSOR_H
