//===- core/AnalyticalModel.h - Closed-form performance model ---*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper-style closed-form estimates ("we adopt a model based
/// approach for 3D memory"). Every bench prints these next to the
/// event-driven simulation so the two can be compared cell by cell:
///
///  - peak bandwidth: V vaults each streaming one TSV beat per cycle;
///  - kernel stream rate: Lanes * 8 B * f_fpga per direction; the phase
///    moves a read and a write stream concurrently, so a kernel-bound
///    phase runs at twice that;
///  - baseline column phase: the blocking design pays the full activate +
///    access + transfer round trip per element;
///  - optimized column phase: block transfers amortize one activation
///    over a whole row buffer, leaving the kernel as the limit;
///  - whole application: two equal-volume phases combine harmonically,
///    T_app = 2 / (1/T_row + 1/T_col);
///  - improvement: (T_opt - T_base) / T_opt, the convention that
///    reproduces the paper's 95.1 / 97.0 / 96.6 %.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CORE_ANALYTICALMODEL_H
#define FFT3D_CORE_ANALYTICALMODEL_H

#include "core/SystemConfig.h"
#include "support/Units.h"

#include <cstdint>

namespace fft3d {

/// Closed-form per-architecture phase estimates (GB/s, read+write).
struct AppEstimate {
  double BaselineRowGBps = 0.0;
  double BaselineColGBps = 0.0;
  double OptimizedRowGBps = 0.0;
  double OptimizedColGBps = 0.0;
  double BaselineAppGBps = 0.0;
  double OptimizedAppGBps = 0.0;
  /// (opt - base) / opt.
  double ImprovementFraction = 0.0;
  Picos BaselineLatency = 0;
  Picos OptimizedLatency = 0;
  unsigned BaselineParallelism = 1;
  unsigned OptimizedParallelism = 8;
};

/// Closed-form estimates for the system of a SystemConfig.
class AnalyticalModel {
public:
  explicit AnalyticalModel(const SystemConfig &Config);

  /// Device peak in GB/s.
  double peakGBps() const;

  /// Kernel stream rate per direction for \p Arch at problem size N.
  double kernelStreamGBps(const ArchParams &Arch) const;

  /// Blocking strided column phase of the baseline, read+write GB/s.
  double baselineColumnGBps() const;

  /// Optimized (block-layout) column phase, read+write GB/s.
  double optimizedColumnGBps() const;

  /// Row phase of either architecture, read+write GB/s.
  double rowPhaseGBps(const ArchParams &Arch) const;

  /// Memory-side limit of full-block streaming, read+write GB/s.
  double blockStreamMemoryLimitGBps() const;

  /// Sequential-burst memory limit for a blocking window-1 front end.
  double blockingSequentialGBps(std::uint32_t BurstBytes) const;

  /// Time from first memory access to the kernel's first output.
  Picos appLatency(const ArchParams &Arch) const;

  /// All of the above combined, Table-2 style.
  AppEstimate estimateApp() const;

  /// Two equal-volume phases at rates \p A and \p B GB/s.
  static double harmonicCombine(double A, double B);

private:
  SystemConfig Config;
};

} // namespace fft3d

#endif // FFT3D_CORE_ANALYTICALMODEL_H
