//===- core/BatchProcessor.cpp - Multi-frame pipelined 2D FFTs ------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/BatchProcessor.h"

#include "core/AccessTrace.h"
#include "core/PhaseEngine.h"
#include "fault/FaultInjector.h"
#include "fft/StreamingKernel.h"
#include "layout/LayoutPlanner.h"
#include "layout/LinearLayouts.h"
#include "mem3d/Backend.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>

using namespace fft3d;

BatchProcessor::BatchProcessor(const SystemConfig &Config) : Config(Config) {
  Config.validate();
}

BatchReport BatchProcessor::run(unsigned Frames) const {
  if (Frames == 0)
    reportFatalError("batch must contain at least one frame");

  const std::uint64_t N = Config.N;
  const std::uint64_t Stride =
      roundUp(N * N * ElementBytes, Config.Mem.Geo.RowBufferBytes);
  // Double-buffered regions: frame i+1 input / mid interleave with frame
  // i's mid / out.
  const RowMajorLayout InputA(N, N, ElementBytes, 0);
  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  // Under fault injection, plan for the vaults healthy at batch start -
  // the steady-state layout after any initial failures were remapped.
  unsigned PlanVaults = Config.Optimized.VaultsParallel;
  if (Config.Mem.Faults && !Config.Mem.Faults->empty()) {
    const FaultInjector Probe(*Config.Mem.Faults, Config.Mem.Geo.NumVaults);
    const unsigned Healthy = Probe.healthyVaults(0);
    if (Healthy == 0)
      reportFatalError("fault spec fails every vault at time zero");
    PlanVaults = std::min(PlanVaults, Healthy);
  }
  const BlockPlan Plan = Planner.plan(N, PlanVaults);
  const BlockDynamicLayout MidA(N, N, ElementBytes, Stride, Plan.W, Plan.H);
  const BlockDynamicLayout MidB(N, N, ElementBytes, 2 * Stride, Plan.W,
                                Plan.H);
  const BlockDynamicLayout OutA(N, N, ElementBytes, 3 * Stride, Plan.W,
                                Plan.H);

  const ArchParams &Arch = Config.Optimized;
  const StreamingKernel Kernel(N, Arch.Lanes, Arch.ClockMHz);
  const double Pace = Kernel.streamGBps();
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Mem.Geo.RowBufferBytes);

  BatchReport Report;
  Report.Frames = Frames;

  // Stage 1: one phase alone (the pipeline's fill and drain stages).
  {
    StackBackend Stack(Config.Mem, Config.SimThreads);
    PhaseEngine Engine(Stack.memory(), Stack.events(),
                       Config.MaxSimBytesPerDirection,
                       Config.MaxSimOpsPerDirection);
    Engine.setShardedEngine(&Stack.engine());
    BlockTrace P2Read(MidA, BlockOrder::ColMajorBlocks);
    BlockTrace P2Write(OutA, BlockOrder::ColMajorBlocks);
    const PhaseResult Lone = Engine.run(
        {&P2Read, false, Arch.ReadWindow, Pace, 0},
        {&P2Write, true, Arch.WriteWindow, Pace,
         Kernel.pipelineFillTime()});
    Report.PhaseTime = Lone.EstimatedPhaseTime;
  }

  // Stage 2: the overlapped steady stage - four streams on one memory.
  {
    StackBackend Stack(Config.Mem, Config.SimThreads);
    PhaseEngine Engine(Stack.memory(), Stack.events(),
                       Config.MaxSimBytesPerDirection,
                       Config.MaxSimOpsPerDirection);
    Engine.setShardedEngine(&Stack.engine());
    // Frame i: column phase over MidA -> OutA.
    BlockTrace P2Read(MidA, BlockOrder::ColMajorBlocks);
    BlockTrace P2Write(OutA, BlockOrder::ColMajorBlocks);
    // Frame i+1: row phase from InputA -> MidB.
    RowScanTrace P1Read(InputA, RowBuf);
    ChunkedBlockWriteTrace P1Write(MidB);
    const PhaseResult Overlap = Engine.runStreams(
        {{&P2Read, false, Arch.ReadWindow, Pace, 0},
         {&P2Write, true, Arch.WriteWindow, Pace,
          Kernel.pipelineFillTime()},
         {&P1Read, false, Arch.ReadWindow, Pace, 0},
         {&P1Write, true, Arch.WriteWindow, Pace,
          Kernel.pipelineFillTime()}});
    Report.OverlapGBps = Overlap.ThroughputGBps;
    Report.OverlapRowHitRate = Overlap.RowHitRate;
    Report.OverlapRowActivations = Overlap.RowActivations;
    // The overlapped stage lasts as long as its slowest member stream
    // needs for a full frame: infer from the combined achieved rate.
    // Each member stream moves one matrix; the stage rate per stream is
    // Throughput/4, so stage time = matrixBytes / (Throughput/4).
    const double PerStreamGBps = Overlap.ThroughputGBps / 4.0;
    Report.OverlapTime = static_cast<Picos>(
        static_cast<double>(N * N * ElementBytes) / PerStreamGBps *
        static_cast<double>(PicosPerNano));
  }

  Report.FullyOverlapped = Report.OverlapTime <= Report.PhaseTime +
                                                     Report.PhaseTime / 20;
  const Picos Steady = std::max(Report.PhaseTime, Report.OverlapTime);
  Report.TotalTime = Frames == 1
                         ? 2 * Report.PhaseTime
                         : 2 * Report.PhaseTime +
                               static_cast<Picos>(Frames - 1) * Steady;
  Report.FramesPerSecond =
      static_cast<double>(Frames) /
      (static_cast<double>(Report.TotalTime) /
       static_cast<double>(PicosPerSecond));
  return Report;
}
