//===- core/SystemConfig.cpp - Whole-system configuration -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/SystemConfig.h"

#include "fft/Complex.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

using namespace fft3d;

const char *fft3d::inputDomainName(InputDomain Input) {
  switch (Input) {
  case InputDomain::Complex:
    return "complex";
  case InputDomain::Real:
    return "real";
  }
  fft3d_unreachable("unknown InputDomain");
}

SystemConfig SystemConfig::forProblemSize(std::uint64_t N) {
  SystemConfig Config;
  Config.N = N;

  // The device of DESIGN.md §6: defaults of Geometry/Timing.
  Config.Mem = MemoryConfig();

  // Baseline (paper §4.2): single-element data path, strided blocking
  // access, plain row-major intermediate.
  Config.Baseline.Lanes = 1;
  Config.Baseline.ReadWindow = 1;
  Config.Baseline.WriteWindow = 1;
  Config.Baseline.Intermediate = LayoutKind::RowMajor;
  Config.Baseline.VaultsParallel = 1;

  // Optimized (paper §4.3): 8-wide streaming kernel, deep request
  // pipelining, block-dynamic intermediate over all vaults.
  Config.Optimized.Lanes = 8;
  Config.Optimized.ReadWindow = 64;
  Config.Optimized.WriteWindow = 64;
  Config.Optimized.Intermediate = LayoutKind::BlockDynamic;
  Config.Optimized.VaultsParallel = Config.Mem.Geo.NumVaults;

  return Config;
}

void SystemConfig::validate() const {
  if (!isPowerOf2(N) || N < 4)
    reportFatalError("problem size must be a power of two >= 4");
  Mem.Geo.validate();
  Mem.Time.validate();
  // Three matrix regions live in memory at once (input, intermediate,
  // output).
  const std::uint64_t MatrixBytes = N * N * ElementBytes;
  if (3 * MatrixBytes > Mem.Geo.capacityBytes())
    reportFatalError("problem does not fit in the 3D memory (need room for "
                     "input, intermediate and output regions)");
  if (Baseline.Lanes == 0 || Optimized.Lanes == 0)
    reportFatalError("kernel lanes must be non-zero");
  if (Optimized.VaultsParallel == 0 ||
      Optimized.VaultsParallel > Mem.Geo.NumVaults)
    reportFatalError("vault parallelism out of range");
}
