//===- core/AccessTrace.h - Phase access-trace generators -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy generators for the memory access streams of the two 2D FFT
/// phases under any DataLayout. A trace op is one memory burst (already
/// split so it never crosses a row buffer); the phase engine paces ops at
/// the kernel's stream rate and submits them to the simulator.
///
/// The generators are lazy because the baseline column phase of an
/// 8192 x 8192 problem is 67M single-element ops - the engine only pulls
/// as many as its simulation budget allows.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CORE_ACCESSTRACE_H
#define FFT3D_CORE_ACCESSTRACE_H

#include "layout/BlockDynamicLayout.h"
#include "layout/DataLayout.h"

#include <cstdint>
#include <optional>

namespace fft3d {

/// One memory burst of a phase trace.
struct TraceOp {
  PhysAddr Addr = 0;
  std::uint32_t Bytes = 0;
};

/// Pull-interface over a phase's access stream.
class TraceSource {
public:
  virtual ~TraceSource();

  /// Next burst, or nullopt when the phase's traffic is exhausted.
  virtual std::optional<TraceOp> next() = 0;

  /// Total bytes the full (uncapped) trace would move.
  virtual std::uint64_t totalBytes() const = 0;

  /// Restarts the trace from the beginning.
  virtual void reset() = 0;
};

/// Row-order scan of a layout (phase-1 reads / writes of linear layouts):
/// visits elements (r, 0..C-1) for r = 0..R-1, coalescing contiguous runs
/// up to \p MaxBurstBytes.
class RowScanTrace : public TraceSource {
public:
  RowScanTrace(const DataLayout &Layout, std::uint32_t MaxBurstBytes);

  std::optional<TraceOp> next() override;
  std::uint64_t totalBytes() const override;
  void reset() override;

private:
  const DataLayout &Layout;
  std::uint32_t MaxBurstBytes;
  std::uint64_t Row = 0;
  std::uint64_t Col = 0;
};

/// Column-order scan (phase-2 streams of linear layouts): visits
/// (0..R-1, c) for c = 0..C-1 with coalescing. Under a row-major layout
/// this is the paper's pathological stride-N stream.
class ColScanTrace : public TraceSource {
public:
  ColScanTrace(const DataLayout &Layout, std::uint32_t MaxBurstBytes);

  std::optional<TraceOp> next() override;
  std::uint64_t totalBytes() const override;
  void reset() override;

private:
  const DataLayout &Layout;
  std::uint32_t MaxBurstBytes;
  std::uint64_t Row = 0;
  std::uint64_t Col = 0;
};

/// Order in which block traces walk the block grid.
enum class BlockOrder {
  /// bc inner, br outer (phase-1 writeback order).
  RowMajorBlocks,
  /// br inner, bc outer (phase-2 fetch order: down the block columns).
  ColMajorBlocks,
};

/// Full-block bursts over a BlockDynamicLayout: each op covers one whole
/// w x h block (one DRAM row). Used for optimized phase-2 reads and
/// writes.
class BlockTrace : public TraceSource {
public:
  BlockTrace(const BlockDynamicLayout &Layout, BlockOrder Order);

  std::optional<TraceOp> next() override;
  std::uint64_t totalBytes() const override;
  void reset() override;

private:
  const BlockDynamicLayout &Layout;
  BlockOrder Order;
  std::uint64_t Index = 0;
};

/// Tile-wise traversal of a linear layout, as an explicit transpose pass
/// (related work [11]) performs it: for each TileRows x TileCols tile in
/// row-major tile order, emit one TileCols-element burst per tile row.
/// On a row-major layout the bursts within a tile stride by the matrix
/// width - the access pattern whose activation cost motivates tiling
/// the transpose in the first place.
class TileScanTrace : public TraceSource {
public:
  TileScanTrace(const DataLayout &Layout, std::uint64_t TileRows,
                std::uint64_t TileCols);

  std::optional<TraceOp> next() override;
  std::uint64_t totalBytes() const override;
  void reset() override;

private:
  const DataLayout &Layout;
  std::uint64_t TileRows;
  std::uint64_t TileCols;
  std::uint64_t TileRow = 0;
  std::uint64_t TileCol = 0;
  std::uint64_t InRow = 0;
};

/// Phase-1 writeback of row-FFT results into a block layout: for each
/// matrix row r, one w-element chunk per block column, landing at
/// in-block offset (r mod h) * w. Ops are w * ElementBytes bursts.
class ChunkedBlockWriteTrace : public TraceSource {
public:
  explicit ChunkedBlockWriteTrace(const BlockDynamicLayout &Layout);

  std::optional<TraceOp> next() override;
  std::uint64_t totalBytes() const override;
  void reset() override;

private:
  const BlockDynamicLayout &Layout;
  std::uint64_t Row = 0;
  std::uint64_t BlockCol = 0;
};

} // namespace fft3d

#endif // FFT3D_CORE_ACCESSTRACE_H
