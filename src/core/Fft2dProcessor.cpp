//===- core/Fft2dProcessor.cpp - The full 2D FFT application --------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/Fft2dProcessor.h"

#include "fft/Fft2d.h"
#include "fft/StreamingKernel.h"
#include "layout/LinearLayouts.h"
#include "permute/ControlUnit.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <memory>

using namespace fft3d;

Fft2dProcessor::Fft2dProcessor(const SystemConfig &Config) : Config(Config) {
  Config.validate();
}

AppReport Fft2dProcessor::runBaseline() {
  return runArchitecture(Config.Baseline, /*Optimized=*/false);
}

AppReport Fft2dProcessor::runOptimized() {
  return runArchitecture(Config.Optimized, /*Optimized=*/true);
}

AppReport Fft2dProcessor::runArchitecture(const ArchParams &Arch,
                                          bool Optimized) {
  const std::uint64_t N = Config.N;
  const std::uint64_t MatrixBytes = N * N * ElementBytes;
  const std::uint64_t RegionStride =
      roundUp(MatrixBytes, Config.Mem.Geo.RowBufferBytes);
  const PhysAddr InputBase = 0;
  const PhysAddr MidBase = RegionStride;
  const PhysAddr OutBase = 2 * RegionStride;

  EventQueue Events;
  Memory3D Mem(Events, Config.Mem);
  PhaseEngine Engine(Mem, Events, Config.MaxSimBytesPerDirection,
                     Config.MaxSimOpsPerDirection);

  const StreamingKernel Kernel(N, Arch.Lanes, Arch.ClockMHz);
  const double PaceGBps = Kernel.streamGBps();
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Mem.Geo.RowBufferBytes);

  AppReport Report;
  Report.N = N;
  Report.Optimized = Optimized;
  Report.DataParallelism = Arch.Lanes;

  // Input always arrives row-major; the output region mirrors the
  // intermediate's layout family.
  const RowMajorLayout Input(N, N, ElementBytes, InputBase);

  if (!Optimized) {
    const RowMajorLayout Mid(N, N, ElementBytes, MidBase);
    const RowMajorLayout Out(N, N, ElementBytes, OutBase);

    // Phase 1: stream rows in, rows out.
    RowScanTrace P1Read(Input, RowBuf);
    RowScanTrace P1Write(Mid, RowBuf);
    Report.RowPhase = Engine.run(
        {&P1Read, false, Arch.ReadWindow, PaceGBps, 0},
        {&P1Write, true, Arch.WriteWindow, PaceGBps,
         Kernel.pipelineFillTime()});

    // Phase 2: the pathological stride-N column walk, both directions.
    ColScanTrace P2Read(Mid, RowBuf);
    ColScanTrace P2Write(Out, RowBuf);
    Report.ColPhase = Engine.run(
        {&P2Read, false, Arch.ReadWindow, PaceGBps, 0},
        {&P2Write, true, Arch.WriteWindow, PaceGBps,
         Kernel.pipelineFillTime()});
  } else {
    const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time,
                                ElementBytes);
    Report.Plan = Planner.plan(N, Arch.VaultsParallel);
    const BlockDynamicLayout Mid(N, N, ElementBytes, MidBase, Report.Plan.W,
                                 Report.Plan.H);
    const BlockDynamicLayout Out(N, N, ElementBytes, OutBase, Report.Plan.W,
                                 Report.Plan.H);

    // The controlling unit programs the permutation network once per
    // phase; its buffers are the layout's on-chip cost.
    PermutationNetwork Network(Arch.Lanes, Report.Plan.W * Report.Plan.H);
    ControlUnit Cu(Network);
    Cu.configureForWriteback(Report.Plan.W, Report.Plan.H,
                             StreamMode::LaneParallel);
    Report.PermuteBufferBytes = Network.bufferBytes(ElementBytes);

    // Phase 1: sequential row reads; block-chunk writes via the network.
    RowScanTrace P1Read(Input, RowBuf);
    ChunkedBlockWriteTrace P1Write(Mid);
    Report.RowPhase = Engine.run(
        {&P1Read, false, Arch.ReadWindow, PaceGBps, 0},
        {&P1Write, true, Arch.WriteWindow, PaceGBps,
         Kernel.pipelineFillTime()});

    Cu.configureForColumnFetch(Report.Plan.W, Report.Plan.H,
                               StreamMode::LaneParallel);
    Report.PermuteBufferBytes = std::max(
        Report.PermuteBufferBytes, Network.bufferBytes(ElementBytes));

    // Phase 2: whole-block reads down the block columns; whole-block
    // writes of the finished columns.
    BlockTrace P2Read(Mid, BlockOrder::ColMajorBlocks);
    BlockTrace P2Write(Out, BlockOrder::ColMajorBlocks);
    Report.ColPhase = Engine.run(
        {&P2Read, false, Arch.ReadWindow, PaceGBps, 0},
        {&P2Write, true, Arch.WriteWindow, PaceGBps,
         Kernel.pipelineFillTime()});
    Report.Reconfigurations = Cu.reconfigurations();
  }

  Report.AppThroughputGBps = AnalyticalModel::harmonicCombine(
      Report.RowPhase.ThroughputGBps, Report.ColPhase.ThroughputGBps);
  Report.PeakUtilization =
      Report.AppThroughputGBps / Mem.peakBandwidthGBps();

  // Latency: first access round trip + time for N inputs at the achieved
  // phase-1 read rate + kernel pipeline fill.
  const double ReadGBps = Report.RowPhase.ThroughputGBps / 2.0;
  const Picos FillInput =
      ReadGBps > 0.0
          ? static_cast<Picos>(static_cast<double>(N) * ElementBytes /
                               ReadGBps * static_cast<double>(PicosPerNano))
          : 0;
  Report.AppLatency = Report.RowPhase.FirstReadComplete + FillInput +
                      Kernel.pipelineFillTime();

  Report.EstimatedTotalTime = Report.RowPhase.EstimatedPhaseTime +
                              Report.ColPhase.EstimatedPhaseTime;
  return Report;
}

Matrix Fft2dProcessor::computeViaDynamicLayout(const Matrix &In,
                                               const SystemConfig &Config,
                                               StreamMode Mode) {
  const std::uint64_t N = In.rows();
  if (In.cols() != N)
    reportFatalError("dynamic-layout pipeline requires a square matrix");

  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan = Planner.plan(N, Config.Optimized.VaultsParallel);
  const BlockDynamicLayout Layout(N, N, ElementBytes, /*Base=*/0, Plan.W,
                                  Plan.H);

  PermutationNetwork Network(
      static_cast<unsigned>(Plan.W),
      Plan.W * Plan.H);
  ControlUnit Cu(Network);

  // Byte-accurate image of the intermediate region, element-indexed.
  std::vector<CplxF> Image(N * N);

  // Phase 1: row FFTs, then per-block writeback through the network.
  Fft1d RowPlan(N);
  Matrix RowDone(N, N);
  std::vector<CplxF> Line;
  for (std::uint64_t R = 0; R != N; ++R) {
    In.copyRow(R, Line);
    RowPlan.forward(Line);
    RowDone.setRow(R, Line);
  }
  Cu.configureForWriteback(Plan.W, Plan.H, Mode);
  std::vector<CplxF> BlockData(Plan.W * Plan.H);
  for (std::uint64_t Br = 0; Br != Layout.blocksPerCol(); ++Br) {
    for (std::uint64_t Bc = 0; Bc != Layout.blocksPerRow(); ++Bc) {
      // Assemble the block in kernel arrival order: row-major beats for
      // the lane-parallel kernel, whole columns for the serial one.
      for (std::uint64_t Ir = 0; Ir != Plan.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
          const std::uint64_t Arrival = Mode == StreamMode::LaneParallel
                                            ? Ir * Plan.W + Ic
                                            : Ic * Plan.H + Ir;
          BlockData[Arrival] =
              RowDone.at(Br * Plan.H + Ir, Bc * Plan.W + Ic);
        }
      const std::vector<CplxF> Stored = Network.permute(BlockData);
      const std::uint64_t BaseSlot =
          Layout.blockBase(Br, Bc) / ElementBytes;
      for (std::uint64_t I = 0; I != Stored.size(); ++I)
        Image[BaseSlot + I] = Stored[I];
    }
  }

  // Phase 2: stream blocks back, run the column FFTs per block column.
  Cu.configureForColumnFetch(Plan.W, Plan.H, Mode);
  Fft1d ColPlan(N);
  Matrix Out(N, N);
  std::vector<std::vector<CplxF>> Columns(Plan.W);
  for (std::uint64_t Bc = 0; Bc != Layout.blocksPerRow(); ++Bc) {
    for (auto &Column : Columns)
      Column.clear();
    for (std::uint64_t Br = 0; Br != Layout.blocksPerCol(); ++Br) {
      const std::uint64_t BaseSlot =
          Layout.blockBase(Br, Bc) / ElementBytes;
      std::vector<CplxF> Fetched(Image.begin() + BaseSlot,
                                 Image.begin() + BaseSlot +
                                     Plan.W * Plan.H);
      const std::vector<CplxF> Stream = Network.permute(Fetched);
      // LaneParallel: beat Ir carries one element of each of the W
      // columns; ColumnSerial delivers whole columns back to back.
      for (std::uint64_t Ir = 0; Ir != Plan.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
          const std::uint64_t Pos = Mode == StreamMode::LaneParallel
                                        ? Ir * Plan.W + Ic
                                        : Ic * Plan.H + Ir;
          Columns[Ic].push_back(Stream[Pos]);
        }
    }
    for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
      ColPlan.forward(Columns[Ic]);
      Out.setCol(Bc * Plan.W + Ic, Columns[Ic]);
    }
  }
  return Out;
}
