//===- core/Fft2dProcessor.cpp - The full 2D FFT application --------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/Fft2dProcessor.h"

#include "fft/Fft2d.h"
#include "fft/PackedSpectrum.h"
#include "fft/StreamingKernel.h"
#include "layout/LinearLayouts.h"
#include "mem3d/Backend.h"
#include "permute/ControlUnit.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <memory>

using namespace fft3d;

Fft2dProcessor::Fft2dProcessor(const SystemConfig &Config) : Config(Config) {
  Config.validate();
}

AppReport Fft2dProcessor::runBaseline() {
  return runArchitecture(Config.Baseline, /*Optimized=*/false);
}

AppReport Fft2dProcessor::runOptimized() {
  return runArchitecture(Config.Optimized, /*Optimized=*/true);
}

AppReport Fft2dProcessor::runArchitecture(const ArchParams &Arch,
                                          bool Optimized) {
  const std::uint64_t N = Config.N;
  const bool Real = Config.Input == InputDomain::Real;
  // Real input: 4-byte samples in, and the irredundant N x (N/2) packed
  // intermediate/output - every region carries exactly half the complex
  // run's bytes, which is the whole point of the mode.
  const std::uint64_t MidCols = Real ? N / 2 : N;
  const unsigned InputElemBytes = Real ? ElementBytes / 2 : ElementBytes;
  const std::uint64_t MatrixBytes = N * MidCols * ElementBytes;
  const std::uint64_t RegionStride =
      roundUp(MatrixBytes, Config.Mem.Geo.RowBufferBytes);
  const PhysAddr InputBase = 0;
  const PhysAddr MidBase = RegionStride;
  const PhysAddr OutBase = 2 * RegionStride;

  // Always the sharded engine, even at SimThreads = 1: the windowed
  // (when, vault, seq) completion order is the canonical one, and running
  // every thread count through the same code path is what makes the
  // determinism claim testable rather than aspirational.
  StackBackend Stack(Config.Mem, Config.SimThreads);
  EventQueue &Events = Stack.events();
  Memory3D &Mem = Stack.memory();
  PhaseEngine Engine(Mem, Events, Config.MaxSimBytesPerDirection,
                     Config.MaxSimOpsPerDirection);
  Engine.setShardedEngine(&Stack.engine());
  Mem.setTracer(Trace, TracePid);
  Engine.setObservability(Trace, Metrics, TracePid);
  if (Trace)
    Trace->setProcessName(
        TracePid, Optimized ? (Real ? "fft2d optimized real" : "fft2d optimized")
                            : (Real ? "fft2d baseline real" : "fft2d baseline"));

  const StreamingKernel Kernel(N, Arch.Lanes, Arch.ClockMHz);
  const double PaceGBps = Kernel.streamGBps();
  const auto RowBuf =
      static_cast<std::uint32_t>(Config.Mem.Geo.RowBufferBytes);

  AppReport Report;
  Report.N = N;
  Report.Optimized = Optimized;
  Report.Input = Config.Input;
  Report.DataParallelism = Arch.Lanes;
  Report.HealthyVaultsStart = Mem.healthyVaults(0);
  if (Report.HealthyVaultsStart == 0)
    reportFatalError("fault spec fails every vault at time zero");

  // Input always arrives row-major; the output region mirrors the
  // intermediate's layout family.
  const RowMajorLayout Input(N, N, InputElemBytes, InputBase);

  if (!Optimized) {
    const RowMajorLayout Mid(N, MidCols, ElementBytes, MidBase);
    const RowMajorLayout Out(N, MidCols, ElementBytes, OutBase);

    // Phase 1: stream rows in, rows out.
    RowScanTrace P1Read(Input, RowBuf);
    RowScanTrace P1Write(Mid, RowBuf);
    Engine.setPhaseName("row_phase");
    Report.RowPhase = Engine.run(
        {&P1Read, false, Arch.ReadWindow, PaceGBps, 0},
        {&P1Write, true, Arch.WriteWindow, PaceGBps,
         Kernel.pipelineFillTime()});

    // Phase 2: the pathological stride-N column walk, both directions.
    ColScanTrace P2Read(Mid, RowBuf);
    ColScanTrace P2Write(Out, RowBuf);
    Engine.setPhaseName("col_phase");
    Report.ColPhase = Engine.run(
        {&P2Read, false, Arch.ReadWindow, PaceGBps, 0},
        {&P2Write, true, Arch.WriteWindow, PaceGBps,
         Kernel.pipelineFillTime()});
  } else {
    const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time,
                                ElementBytes);
    // Plan with the vaults that are actually healthy when the run starts:
    // a vault already failed at t=0 never receives blocks.
    const unsigned PlanVaults =
        std::min<unsigned>(Arch.VaultsParallel, Report.HealthyVaultsStart);
    Report.Plan = Real ? Planner.planPacked(N, PlanVaults)
                       : Planner.plan(N, PlanVaults);
    const BlockDynamicLayout Mid(N, MidCols, ElementBytes, MidBase,
                                 Report.Plan.W, Report.Plan.H);
    const BlockDynamicLayout Out(N, MidCols, ElementBytes, OutBase,
                                 Report.Plan.W, Report.Plan.H);

    // The controlling unit programs the permutation network once per
    // phase; its buffers are the layout's on-chip cost.
    PermutationNetwork Network(Arch.Lanes, Report.Plan.W * Report.Plan.H);
    ControlUnit Cu(Network);
    Cu.configureForWriteback(Report.Plan.W, Report.Plan.H,
                             StreamMode::LaneParallel);
    Report.PermuteBufferBytes = Network.bufferBytes(ElementBytes);

    // Phase 1: sequential row reads; block-chunk writes via the network.
    RowScanTrace P1Read(Input, RowBuf);
    ChunkedBlockWriteTrace P1Write(Mid);
    Engine.setPhaseName("row_phase");
    Report.RowPhase = Engine.run(
        {&P1Read, false, Arch.ReadWindow, PaceGBps, 0},
        {&P1Write, true, Arch.WriteWindow, PaceGBps,
         Kernel.pipelineFillTime()});

    // Checkpoint at the phase boundary: if vaults died during phase 1,
    // re-solve Eq. 1 for the survivors and migrate the intermediate into
    // the re-planned layout before the column phase touches it. The
    // migration stage reuses the OutBase region for the new intermediate
    // and the (now stale) MidBase region for phase-2 output, so no extra
    // memory is needed - the regions swap roles.
    const BlockDynamicLayout *P2Mid = &Mid;
    const BlockDynamicLayout *P2Out = &Out;
    std::unique_ptr<BlockDynamicLayout> ReplannedMid, ReplannedOut;
    BlockPlan P2Plan = Report.Plan;
    if (Mem.faults()) {
      const unsigned HealthyNow = Mem.healthyVaults(Events.now());
      if (HealthyNow == 0)
        reportFatalError("every vault failed during phase 1; the "
                         "checkpoint cannot be recovered");
      if (HealthyNow < PlanVaults) {
        const DegradedPlan Degraded =
            Real ? Planner.planPackedDegraded(
                       N, Mem.faults()->onlineVaults(Events.now()),
                       Arch.VaultsParallel)
                 : Planner.planDegraded(
                       N, Mem.faults()->onlineVaults(Events.now()),
                       Arch.VaultsParallel);
        Report.Replanned = true;
        Report.ReplannedPlan = Degraded.Plan;
        P2Plan = Degraded.Plan;
        ReplannedMid = std::make_unique<BlockDynamicLayout>(
            N, MidCols, ElementBytes, OutBase, P2Plan.W, P2Plan.H);
        ReplannedOut = std::make_unique<BlockDynamicLayout>(
            N, MidCols, ElementBytes, MidBase, P2Plan.W, P2Plan.H);
        // Migration: stream every checkpointed block out of the old
        // layout and straight into the new one, memory-bound (no kernel
        // pacing - this is a pure copy through the permutation network).
        BlockTrace MigRead(Mid, BlockOrder::RowMajorBlocks);
        BlockTrace MigWrite(*ReplannedMid, BlockOrder::RowMajorBlocks);
        Engine.setPhaseName("migration");
        const PhaseResult Migration =
            Engine.run({&MigRead, false, Arch.ReadWindow, 0.0, 0},
                       {&MigWrite, true, Arch.WriteWindow, 0.0, 0});
        Report.MigrationTime = Migration.EstimatedPhaseTime;
        P2Mid = ReplannedMid.get();
        P2Out = ReplannedOut.get();
      }
    }

    Cu.configureForColumnFetch(P2Plan.W, P2Plan.H,
                               StreamMode::LaneParallel);
    Report.PermuteBufferBytes = std::max(
        Report.PermuteBufferBytes, Network.bufferBytes(ElementBytes));

    // Phase 2: whole-block reads down the block columns; whole-block
    // writes of the finished columns.
    BlockTrace P2Read(*P2Mid, BlockOrder::ColMajorBlocks);
    BlockTrace P2Write(*P2Out, BlockOrder::ColMajorBlocks);
    Engine.setPhaseName("col_phase");
    Report.ColPhase = Engine.run(
        {&P2Read, false, Arch.ReadWindow, PaceGBps, 0},
        {&P2Write, true, Arch.WriteWindow, PaceGBps,
         Kernel.pipelineFillTime()});
    Report.Reconfigurations = Cu.reconfigurations();
  }

  Report.AppThroughputGBps = AnalyticalModel::harmonicCombine(
      Report.RowPhase.ThroughputGBps, Report.ColPhase.ThroughputGBps);
  Report.PeakUtilization =
      Report.AppThroughputGBps / Mem.peakBandwidthGBps();

  // Latency: first access round trip + time for N inputs at the achieved
  // phase-1 read rate + kernel pipeline fill.
  const double ReadGBps = Report.RowPhase.ThroughputGBps / 2.0;
  const Picos FillInput =
      ReadGBps > 0.0
          ? static_cast<Picos>(static_cast<double>(N) * InputElemBytes /
                               ReadGBps * static_cast<double>(PicosPerNano))
          : 0;
  Report.AppLatency = Report.RowPhase.FirstReadComplete + FillInput +
                      Kernel.pipelineFillTime();

  Report.EstimatedTotalTime = Report.RowPhase.EstimatedPhaseTime +
                              Report.MigrationTime +
                              Report.ColPhase.EstimatedPhaseTime;
  Report.HealthyVaultsEnd = Mem.healthyVaults(Events.now());
  const ShardedEventQueue::WindowStats &Win = Stack.engine().windowStats();
  Report.SimWindows = Win.Windows;
  Report.SimStreamWindows = Win.StreamWindows;
  Report.SimBarriers = Win.Barriers;
  return Report;
}

Matrix Fft2dProcessor::computeViaDynamicLayout(const Matrix &In,
                                               const SystemConfig &Config,
                                               StreamMode Mode) {
  const std::uint64_t N = In.rows();
  if (In.cols() != N)
    reportFatalError("dynamic-layout pipeline requires a square matrix");

  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan = Planner.plan(N, Config.Optimized.VaultsParallel);
  const BlockDynamicLayout Layout(N, N, ElementBytes, /*Base=*/0, Plan.W,
                                  Plan.H);

  PermutationNetwork Network(
      static_cast<unsigned>(Plan.W),
      Plan.W * Plan.H);
  ControlUnit Cu(Network);

  // Byte-accurate image of the intermediate region, element-indexed.
  std::vector<CplxF> Image(N * N);

  // Phase 1: row FFTs, then per-block writeback through the network.
  Fft1d RowPlan(N);
  Matrix RowDone(N, N);
  std::vector<CplxF> Line;
  for (std::uint64_t R = 0; R != N; ++R) {
    In.copyRow(R, Line);
    RowPlan.forward(Line);
    RowDone.setRow(R, Line);
  }
  Cu.configureForWriteback(Plan.W, Plan.H, Mode);
  std::vector<CplxF> BlockData(Plan.W * Plan.H);
  for (std::uint64_t Br = 0; Br != Layout.blocksPerCol(); ++Br) {
    for (std::uint64_t Bc = 0; Bc != Layout.blocksPerRow(); ++Bc) {
      // Assemble the block in kernel arrival order: row-major beats for
      // the lane-parallel kernel, whole columns for the serial one.
      for (std::uint64_t Ir = 0; Ir != Plan.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
          const std::uint64_t Arrival = Mode == StreamMode::LaneParallel
                                            ? Ir * Plan.W + Ic
                                            : Ic * Plan.H + Ir;
          BlockData[Arrival] =
              RowDone.at(Br * Plan.H + Ir, Bc * Plan.W + Ic);
        }
      const std::vector<CplxF> Stored = Network.permute(BlockData);
      const std::uint64_t BaseSlot =
          Layout.blockBase(Br, Bc) / ElementBytes;
      for (std::uint64_t I = 0; I != Stored.size(); ++I)
        Image[BaseSlot + I] = Stored[I];
    }
  }

  // Phase 2: stream blocks back, run the column FFTs per block column.
  Cu.configureForColumnFetch(Plan.W, Plan.H, Mode);
  Fft1d ColPlan(N);
  Matrix Out(N, N);
  std::vector<std::vector<CplxF>> Columns(Plan.W);
  for (std::uint64_t Bc = 0; Bc != Layout.blocksPerRow(); ++Bc) {
    for (auto &Column : Columns)
      Column.clear();
    for (std::uint64_t Br = 0; Br != Layout.blocksPerCol(); ++Br) {
      const std::uint64_t BaseSlot =
          Layout.blockBase(Br, Bc) / ElementBytes;
      std::vector<CplxF> Fetched(Image.begin() + BaseSlot,
                                 Image.begin() + BaseSlot +
                                     Plan.W * Plan.H);
      const std::vector<CplxF> Stream = Network.permute(Fetched);
      // LaneParallel: beat Ir carries one element of each of the W
      // columns; ColumnSerial delivers whole columns back to back.
      for (std::uint64_t Ir = 0; Ir != Plan.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
          const std::uint64_t Pos = Mode == StreamMode::LaneParallel
                                        ? Ir * Plan.W + Ic
                                        : Ic * Plan.H + Ir;
          Columns[Ic].push_back(Stream[Pos]);
        }
    }
    for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
      ColPlan.forward(Columns[Ic]);
      Out.setCol(Bc * Plan.W + Ic, Columns[Ic]);
    }
  }
  return Out;
}

Matrix Fft2dProcessor::computeViaDynamicLayoutWithVaultLoss(
    const Matrix &In, const SystemConfig &Config, unsigned FailedVaults,
    StreamMode Mode) {
  const std::uint64_t N = In.rows();
  if (In.cols() != N)
    reportFatalError("dynamic-layout pipeline requires a square matrix");
  if (FailedVaults >= Config.Mem.Geo.NumVaults)
    reportFatalError("vault-loss run requires at least one surviving vault");

  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);

  // Phase 1 runs on the healthy device, exactly as computeViaDynamicLayout.
  const BlockPlan Plan0 = Planner.plan(N, Config.Optimized.VaultsParallel);
  const BlockDynamicLayout Layout0(N, N, ElementBytes, /*Base=*/0, Plan0.W,
                                   Plan0.H);
  PermutationNetwork Net0(static_cast<unsigned>(Plan0.W), Plan0.W * Plan0.H);
  ControlUnit Cu0(Net0);

  std::vector<CplxF> Image(N * N);
  Fft1d RowPlan(N);
  Matrix RowDone(N, N);
  std::vector<CplxF> Line;
  for (std::uint64_t R = 0; R != N; ++R) {
    In.copyRow(R, Line);
    RowPlan.forward(Line);
    RowDone.setRow(R, Line);
  }
  Cu0.configureForWriteback(Plan0.W, Plan0.H, Mode);
  std::vector<CplxF> BlockData(Plan0.W * Plan0.H);
  for (std::uint64_t Br = 0; Br != Layout0.blocksPerCol(); ++Br) {
    for (std::uint64_t Bc = 0; Bc != Layout0.blocksPerRow(); ++Bc) {
      for (std::uint64_t Ir = 0; Ir != Plan0.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan0.W; ++Ic) {
          const std::uint64_t Arrival = Mode == StreamMode::LaneParallel
                                            ? Ir * Plan0.W + Ic
                                            : Ic * Plan0.H + Ir;
          BlockData[Arrival] =
              RowDone.at(Br * Plan0.H + Ir, Bc * Plan0.W + Ic);
        }
      const std::vector<CplxF> Stored = Net0.permute(BlockData);
      const std::uint64_t BaseSlot =
          Layout0.blockBase(Br, Bc) / ElementBytes;
      for (std::uint64_t I = 0; I != Stored.size(); ++I)
        Image[BaseSlot + I] = Stored[I];
    }
  }

  // The phase boundary: FailedVaults vaults drop out. Re-solve Eq. 1 for
  // the survivors, then migrate the checkpointed intermediate - fetch
  // every block back through the network (undoing the phase-1
  // permutation) and re-store it under the new plan's writeback
  // configuration. The elements only move; no value is recomputed.
  std::vector<bool> Online(Config.Mem.Geo.NumVaults, true);
  for (unsigned V = 0; V != FailedVaults; ++V)
    Online[V] = false;
  const DegradedPlan Degraded =
      Planner.planDegraded(N, Online, Config.Optimized.VaultsParallel);
  const BlockPlan Plan1 = Degraded.Plan;
  const BlockDynamicLayout Layout1(N, N, ElementBytes, /*Base=*/0, Plan1.W,
                                   Plan1.H);

  Cu0.configureForColumnFetch(Plan0.W, Plan0.H, Mode);
  Matrix Mid(N, N);
  for (std::uint64_t Br = 0; Br != Layout0.blocksPerCol(); ++Br) {
    for (std::uint64_t Bc = 0; Bc != Layout0.blocksPerRow(); ++Bc) {
      const std::uint64_t BaseSlot =
          Layout0.blockBase(Br, Bc) / ElementBytes;
      std::vector<CplxF> Fetched(Image.begin() + BaseSlot,
                                 Image.begin() + BaseSlot +
                                     Plan0.W * Plan0.H);
      const std::vector<CplxF> Stream = Net0.permute(Fetched);
      for (std::uint64_t Ir = 0; Ir != Plan0.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan0.W; ++Ic) {
          const std::uint64_t Pos = Mode == StreamMode::LaneParallel
                                        ? Ir * Plan0.W + Ic
                                        : Ic * Plan0.H + Ir;
          Mid.at(Br * Plan0.H + Ir, Bc * Plan0.W + Ic) = Stream[Pos];
        }
    }
  }

  PermutationNetwork Net1(static_cast<unsigned>(Plan1.W), Plan1.W * Plan1.H);
  ControlUnit Cu1(Net1);
  Cu1.configureForWriteback(Plan1.W, Plan1.H, Mode);
  std::vector<CplxF> MigImage(N * N);
  BlockData.assign(Plan1.W * Plan1.H, CplxF{});
  for (std::uint64_t Br = 0; Br != Layout1.blocksPerCol(); ++Br) {
    for (std::uint64_t Bc = 0; Bc != Layout1.blocksPerRow(); ++Bc) {
      for (std::uint64_t Ir = 0; Ir != Plan1.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan1.W; ++Ic) {
          const std::uint64_t Arrival = Mode == StreamMode::LaneParallel
                                            ? Ir * Plan1.W + Ic
                                            : Ic * Plan1.H + Ir;
          BlockData[Arrival] =
              Mid.at(Br * Plan1.H + Ir, Bc * Plan1.W + Ic);
        }
      const std::vector<CplxF> Stored = Net1.permute(BlockData);
      const std::uint64_t BaseSlot =
          Layout1.blockBase(Br, Bc) / ElementBytes;
      for (std::uint64_t I = 0; I != Stored.size(); ++I)
        MigImage[BaseSlot + I] = Stored[I];
    }
  }

  // Phase 2 on the re-planned blocks across the surviving vaults. Each
  // logical column is assembled in natural row order whatever the block
  // shape, so the column FFTs see bit-identical inputs to the fault-free
  // run.
  Cu1.configureForColumnFetch(Plan1.W, Plan1.H, Mode);
  Fft1d ColPlan(N);
  Matrix Out(N, N);
  std::vector<std::vector<CplxF>> Columns(Plan1.W);
  for (std::uint64_t Bc = 0; Bc != Layout1.blocksPerRow(); ++Bc) {
    for (auto &Column : Columns)
      Column.clear();
    for (std::uint64_t Br = 0; Br != Layout1.blocksPerCol(); ++Br) {
      const std::uint64_t BaseSlot =
          Layout1.blockBase(Br, Bc) / ElementBytes;
      std::vector<CplxF> Fetched(MigImage.begin() + BaseSlot,
                                 MigImage.begin() + BaseSlot +
                                     Plan1.W * Plan1.H);
      const std::vector<CplxF> Stream = Net1.permute(Fetched);
      for (std::uint64_t Ir = 0; Ir != Plan1.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan1.W; ++Ic) {
          const std::uint64_t Pos = Mode == StreamMode::LaneParallel
                                        ? Ir * Plan1.W + Ic
                                        : Ic * Plan1.H + Ir;
          Columns[Ic].push_back(Stream[Pos]);
        }
    }
    for (std::uint64_t Ic = 0; Ic != Plan1.W; ++Ic) {
      ColPlan.forward(Columns[Ic]);
      Out.setCol(Bc * Plan1.W + Ic, Columns[Ic]);
    }
  }
  return Out;
}

Matrix Fft2dProcessor::computeRealViaDynamicLayout(
    const std::vector<double> &Field, const SystemConfig &Config,
    StreamMode Mode) {
  const std::uint64_t N = Config.N;
  if (Field.size() != N * N)
    reportFatalError("real-input pipeline requires an N x N field");

  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan =
      Planner.planPacked(N, Config.Optimized.VaultsParallel);
  const std::uint64_t Cols = N / 2;
  const BlockDynamicLayout Layout(N, Cols, ElementBytes, /*Base=*/0, Plan.W,
                                  Plan.H);

  PermutationNetwork Network(static_cast<unsigned>(Plan.W),
                             Plan.W * Plan.H);
  ControlUnit Cu(Network);

  // Byte-accurate image of the packed intermediate region.
  std::vector<CplxF> Image(N * Cols);

  // Phase 1: packed r2c row transforms - identical arithmetic to the
  // host-side packedRealRowTransform - then per-block writeback through
  // the permutation network into the wedge's Eq. 1 layout.
  Matrix RowDone = packedRealRowTransform(Field, N, N);
  Cu.configureForWriteback(Plan.W, Plan.H, Mode);
  std::vector<CplxF> BlockData(Plan.W * Plan.H);
  for (std::uint64_t Br = 0; Br != Layout.blocksPerCol(); ++Br) {
    for (std::uint64_t Bc = 0; Bc != Layout.blocksPerRow(); ++Bc) {
      for (std::uint64_t Ir = 0; Ir != Plan.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
          const std::uint64_t Arrival = Mode == StreamMode::LaneParallel
                                            ? Ir * Plan.W + Ic
                                            : Ic * Plan.H + Ir;
          BlockData[Arrival] =
              RowDone.at(Br * Plan.H + Ir, Bc * Plan.W + Ic);
        }
      const std::vector<CplxF> Stored = Network.permute(BlockData);
      const std::uint64_t BaseSlot =
          Layout.blockBase(Br, Bc) / ElementBytes;
      for (std::uint64_t I = 0; I != Stored.size(); ++I)
        Image[BaseSlot + I] = Stored[I];
    }
  }

  // Phase 2: stream blocks back and run plain complex column FFTs on
  // every packed column. The folded column 0 needs no special case -
  // that is the entire point of the packing.
  Cu.configureForColumnFetch(Plan.W, Plan.H, Mode);
  Fft1d ColPlan(N);
  Matrix Out(N, Cols);
  std::vector<std::vector<CplxF>> Columns(Plan.W);
  for (std::uint64_t Bc = 0; Bc != Layout.blocksPerRow(); ++Bc) {
    for (auto &Column : Columns)
      Column.clear();
    for (std::uint64_t Br = 0; Br != Layout.blocksPerCol(); ++Br) {
      const std::uint64_t BaseSlot =
          Layout.blockBase(Br, Bc) / ElementBytes;
      std::vector<CplxF> Fetched(Image.begin() + BaseSlot,
                                 Image.begin() + BaseSlot +
                                     Plan.W * Plan.H);
      const std::vector<CplxF> Stream = Network.permute(Fetched);
      for (std::uint64_t Ir = 0; Ir != Plan.H; ++Ir)
        for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
          const std::uint64_t Pos = Mode == StreamMode::LaneParallel
                                        ? Ir * Plan.W + Ic
                                        : Ic * Plan.H + Ir;
          Columns[Ic].push_back(Stream[Pos]);
        }
    }
    for (std::uint64_t Ic = 0; Ic != Plan.W; ++Ic) {
      ColPlan.forward(Columns[Ic]);
      Out.setCol(Bc * Plan.W + Ic, Columns[Ic]);
    }
  }
  return Out;
}
