//===- core/Fft2dProcessor.h - The full 2D FFT application ------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete 2D FFT processor of paper Fig. 3, in both variants:
///
///  - baseline (§4.2): row-major intermediate; phase 2 walks columns with
///    stride N through a blocking front end;
///  - optimized (§4.3/4.4): the controlling unit programs the permutation
///    network so phase-1 results land in the block-dynamic layout across
///    all vaults, and phase 2 streams whole blocks.
///
/// The processor produces performance reports (event-driven simulation
/// against the 3D memory) and, independently, a functional path that
/// routes real data through the layout + permutation network to prove
/// the optimized machinery computes the same transform.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_CORE_FFT2DPROCESSOR_H
#define FFT3D_CORE_FFT2DPROCESSOR_H

#include "core/AnalyticalModel.h"
#include "core/PhaseEngine.h"
#include "core/SystemConfig.h"
#include "fft/Matrix.h"
#include "layout/LayoutPlanner.h"
#include "permute/ControlUnit.h"

#include <cstdint>

namespace fft3d {

/// Simulation report for one architecture on one problem size.
struct AppReport {
  std::uint64_t N = 0;
  bool Optimized = false;
  /// Sample domain the run simulated. Real runs move an N x (N/2)
  /// packed intermediate - half the complex path's phase-2 bytes.
  InputDomain Input = InputDomain::Complex;
  PhaseResult RowPhase;
  PhaseResult ColPhase;
  /// Harmonic combination of the two equal-volume phases, GB/s.
  double AppThroughputGBps = 0.0;
  double PeakUtilization = 0.0;
  /// First memory access to first kernel output.
  Picos AppLatency = 0;
  unsigned DataParallelism = 1;
  /// End-to-end duration implied by the measured steady-state rates.
  Picos EstimatedTotalTime = 0;
  /// Sharded-engine window accounting over the whole run (all phases):
  /// how many conservative windows the run needed, how many of those
  /// free-ran barrier-free (streaming), and the total barrier count.
  /// Benchmarks report these next to wall time - fewer windows per run
  /// is the engine's scalability lever.
  std::uint64_t SimWindows = 0;
  std::uint64_t SimStreamWindows = 0;
  std::uint64_t SimBarriers = 0;
  /// Optimized-only costs of the dynamic layout machinery.
  std::uint64_t PermuteBufferBytes = 0;
  std::uint64_t Reconfigurations = 0;
  BlockPlan Plan;
  /// Fault-injection outcome (defaults without a fault spec). Healthy
  /// vault counts observed at the start and end of the run.
  unsigned HealthyVaultsStart = 0;
  unsigned HealthyVaultsEnd = 0;
  /// True when a vault loss at the phase boundary forced an Eq. 1
  /// re-plan; ReplannedPlan is the surviving-vault plan phase 2 used and
  /// MigrationTime the cost of streaming the checkpointed intermediate
  /// into the new layout.
  bool Replanned = false;
  BlockPlan ReplannedPlan;
  Picos MigrationTime = 0;
};

/// Runs the two architectures of the paper against the simulated memory.
class Fft2dProcessor {
public:
  explicit Fft2dProcessor(const SystemConfig &Config);

  const SystemConfig &config() const { return Config; }

  /// Attaches observability sinks for subsequent runs (either may be
  /// null): the tracer receives phase spans and memory/fault timeline
  /// events, the registry receives per-phase and per-vault counters.
  void setObservability(Tracer *T, MetricsRegistry *M,
                        std::uint32_t TracePid = 0) {
    Trace = T;
    Metrics = M;
    this->TracePid = TracePid;
  }

  /// Simulates the baseline architecture (both phases).
  AppReport runBaseline();

  /// Simulates the optimized architecture (both phases).
  AppReport runOptimized();

  /// Functional integration path: computes the 2D FFT of \p In by
  /// explicitly storing phase-1 results through the dynamic layout into a
  /// byte-accurate memory image, streaming blocks back through the
  /// permutation network, and running the column FFTs - exactly the
  /// optimized data flow, minus timing. Intended for moderate N.
  /// \p Mode selects the kernel stream discipline: LaneParallel uses the
  /// identity block permutations (w lanes side by side), ColumnSerial
  /// drives the network's w x h transposes.
  static Matrix
  computeViaDynamicLayout(const Matrix &In, const SystemConfig &Config,
                          StreamMode Mode = StreamMode::LaneParallel);

  /// Functional graceful-degradation path: phase 1 runs with the full
  /// Eq. 1 plan; then \p FailedVaults of the device's vaults drop out, the
  /// phase-boundary checkpoint streams every block out of the old layout
  /// and back through the permutation network into the layout re-planned
  /// for the surviving n_v' = NumVaults - FailedVaults, and phase 2 runs
  /// on the re-planned blocks. The transform itself touches identical
  /// values in identical order, so the output is bit-identical to the
  /// fault-free computeViaDynamicLayout run - the property the recovery
  /// test pins down to the last ulp.
  static Matrix computeViaDynamicLayoutWithVaultLoss(
      const Matrix &In, const SystemConfig &Config, unsigned FailedVaults,
      StreamMode Mode = StreamMode::LaneParallel);

  /// Real-input functional path: the packed half-spectrum pipeline.
  /// Row r2c transforms fold each row to N/2 elements (Nyquist into the
  /// DC imaginary slot); the packed N x (N/2) intermediate is stored
  /// through the Eq. 1 plan re-solved for the wedge (planPacked) and
  /// streamed back through the permutation network; plain complex column
  /// FFTs finish the transform with no unpacking. Returns the packed
  /// matrix - bit-identical to packedRealForward2d(), and convertible to
  /// the logical half spectrum with unpackSpectrum().
  static Matrix
  computeRealViaDynamicLayout(const std::vector<double> &Field,
                              const SystemConfig &Config,
                              StreamMode Mode = StreamMode::LaneParallel);

private:
  AppReport runArchitecture(const ArchParams &Arch, bool Optimized);

  SystemConfig Config;
  Tracer *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;
  std::uint32_t TracePid = 0;
};

} // namespace fft3d

#endif // FFT3D_CORE_FFT2DPROCESSOR_H
